#!/usr/bin/env python
"""Generation-time benchmark: memoized vs. legacy GMC compilation.

Times the GMC dynamic program (``GMCAlgorithm.solve``) over random
generalized chains of lengths 3-14 under two configurations:

* **memoized** -- the default pipeline: hash-consed expressions, single-pass
  memoized property inference, cached identity keys and kernel costs;
* **legacy** -- the reference pipeline: per-predicate recursive inference
  (``legacy_inference()``), the reference matcher acceptance path that
  re-walks patterns per candidate (``legacy_binding()``), and no hash
  consing (``interning_disabled()``).

Note the legacy configuration still benefits from the always-on caches that
have no toggle (constructor-primed expression hashes/keys, cached matcher
tokens and subject flattening, the kernel-cost cache), so the measured
speedup is a *lower bound* on memoized-vs-seed: those caches only make the
legacy baseline faster, never slower.

A second section benchmarks the **signature-keyed kernel-match cache** and
**DP split pruning** introduced on top of the memoized pipeline, against the
memoized-but-uncached/unpruned configuration (the PR 1 baseline).  For every
chain length it measures:

* the baseline's warm repeated-solve time (match caching disabled, pruning
  off, but inference/interning/kernel-cost caches warm);
* the cached + pruned pipeline cold (first solve, empty match cache) and
  warm (repeated solve, all caches hot) -- the batch/server scenario where
  one process serves many structurally similar chains;
* the match-cache hit rate of the warm pass.

A third, optional section (``--serve``) benchmarks the **compilation
service**: batches of structurally similar chains (renamed copies sharing
one signature) submitted through the warm-cache worker pool of
:mod:`repro.service`, reporting cold/warm batch throughput (requests/sec)
and the pooled warm plan-cache hit rate (the whole-plan cache of
:mod:`repro.persist` answers warm signature-equal traffic above the
solvers) -- the numbers ``GET /stats`` serves in production.

A fourth section benchmarks **snapshot-backed warm boot**
(:mod:`repro.persist.snapshot`): one worker pool compiles a batch cold and
persists its caches on shutdown; a *restarted* pool pointed at the same
``--snapshot-dir`` then serves renamed (signature-equal) copies, and the
section records the restarted pool's first-batch latency and plan-cache
hit rate -- a warm boot answers its very first requests from the snapshot's
plan cache, with kernel sequences asserted identical to the cold solves
(``--check-plan-hit-rate`` gates this in CI).

A fifth section benchmarks **intra-solve parallelism**
(:mod:`repro.core.parallel`): cold solves of long chains (>= 20 factors,
pruning enabled) under the serial reference tier vs the parallel tier
(``parallelism="threads:2"``), interleaved and min-of-N per chain to
suppress scheduler noise.  The parallel tier must be *bit-identical* --
optimal cost, kernel sequence and parenthesization are asserted equal per
solve -- and the recorded speedup is the tier's cold-solve win
(bound-ordered split evaluation + signature-keyed decision memoization +
thread dispatch).  ``--check-parallel-identity`` turns the identity
assertion into a hard CI gate; ``--check-parallel-speedup X`` gates the
aggregate speedup.

A sixth section gates **trace overhead** (:mod:`repro.obs`): warm repeated
solves on a never-traced solver vs the same untraced path on a solver that
ran one traced solve first (any instrumentation the traced fill failed to
clean up would slow every later cell), plus the informational traced-on
cost.  ``--check-trace-overhead X`` (CI uses 0.03) fails the run when the
untraced hot path is not measurably free.

A seventh section gates **workload-analytics overhead**
(:mod:`repro.obs.analytics`): warm serve requests through one shared
session, alternating per request between analytics recording (the
always-on default) and ``analytics_disabled()``, reporting the median of
paired per-repeat CPU-time ratios.  ``--check-analytics-overhead X`` (CI
uses 0.03) fails the run when the recording arm exceeds the off arm by
``X`` or more.

For every chain all configurations must produce identical solutions
(optimal cost and parenthesization); the script asserts this and records the
outcome, so the benchmark doubles as an end-to-end equivalence check on the
measured workload.

Results are written to ``BENCH_generation.json`` (override with
``--output``).  Usage::

    PYTHONPATH=src python scripts/bench_generation.py           # full run
    PYTHONPATH=src python scripts/bench_generation.py --smoke   # CI-sized

``--check-speedup X`` exits non-zero when the aggregate speedup on chains of
length >= 10 falls below ``X``; ``--check-hit-rate R`` does the same when
the warm match-cache hit rate on the chain-12 case (or the longest
benchmarked length) falls below ``R`` (both used by CI).
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import statistics
import sys
import time
from pathlib import Path

import re

from repro.algebra import clear_inference_cache, clear_intern_table
from repro.algebra.inference import legacy_inference
from repro.algebra.interning import interning_disabled
from repro.core import GMCAlgorithm
from repro.cost import FlopCount
from repro.experiments.workload import ChainGenerator
from repro.kernels.catalog import KernelCatalog, build_default_kernels
from repro.matching.discrimination_net import legacy_binding
from repro.matching.match_cache import match_caching_disabled
from repro.options import CompileOptions


def make_problems(length: int, count: int, seed: int):
    """Random well-formed chains of exactly *length* factors."""
    generator = ChainGenerator(
        min_length=length,
        max_length=length,
        size_choices=tuple(range(50, 301, 50)),
        vector_probability=0.10,
        square_probability=0.40,
        transpose_probability=0.25,
        inverse_probability=0.25,
        property_probability=0.60,
        seed=seed,
    )
    return generator.generate_many(count)


def time_solves(problems, repeats: int, prune: bool = True):
    """Solve every problem *repeats* times on a fresh algorithm.

    Returns (per-problem best times in seconds, solutions of the last pass).
    The metric instance is fresh per call so its kernel-cost cache never
    leaks across configurations.
    """
    algorithm = GMCAlgorithm(CompileOptions(metric=FlopCount(), prune=prune))
    best = [math.inf] * len(problems)
    solutions = [None] * len(problems)
    for _ in range(repeats):
        for index, problem in enumerate(problems):
            start = time.perf_counter()
            solution = algorithm.solve(problem.expression)
            elapsed = time.perf_counter() - start
            if elapsed < best[index]:
                best[index] = elapsed
            solutions[index] = solution
    return best, solutions


def _solutions_differ(reference, candidate) -> bool:
    """True when two solutions of the same chain are not identical."""
    if reference.computable != candidate.computable:
        return True
    if not reference.computable:
        return False
    return not (
        math.isclose(
            float(reference.optimal_cost),
            float(candidate.optimal_cost),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
        and reference.parenthesization() == candidate.parenthesization()
    )


def run_match_cache(lengths, chains_per_length, seed, repeats=1):
    """Benchmark the signature-keyed match cache + DP pruning.

    Baseline is the PR 1 pipeline (memoized inference + hash consing) with
    match caching disabled and pruning off; both its timing pass and the
    cached pipeline's warm pass run with warm inference/interning caches, so
    the measured ratio isolates the match cache and the pruning.  Every
    timed pass is run *repeats* times and the best total is kept (cold
    passes re-clear the caches each time), which suppresses scheduler noise
    exactly as ``time_solves`` does for the main section.
    """
    per_length = []
    mismatches = []
    for length in lengths:
        problems = make_problems(length, chains_per_length, seed + length)
        # A private catalog => a private match cache, so hit-rate stats are
        # exact and the process-wide default catalog stays untouched.  The
        # baseline configuration (no match cache, no pruning) is spelled
        # explicitly through CompileOptions rather than the process-global
        # match_caching_disabled() toggle.
        catalog = KernelCatalog(build_default_kernels(), name="bench")
        baseline_options = CompileOptions(
            catalog=catalog, metric=FlopCount(), prune=False, match_cache=False
        )
        cached_options = CompileOptions(catalog=catalog, metric=FlopCount())
        baseline = GMCAlgorithm(baseline_options)
        cached = GMCAlgorithm(cached_options)

        clear_inference_cache()
        clear_intern_table()
        baseline_repeat_s = math.inf
        for problem in problems:  # warm-up pass (inference, interning)
            baseline.solve(problem.expression)
        for _ in range(repeats):
            start = time.perf_counter()
            baseline_solutions = [baseline.solve(p.expression) for p in problems]
            baseline_repeat_s = min(
                baseline_repeat_s, time.perf_counter() - start
            )

        cold_s = math.inf
        for _ in range(repeats):
            # A genuinely cold first solve: every cache empty, including the
            # kernel-cost memo (hence the fresh algorithm/metric per repeat).
            clear_inference_cache()
            clear_intern_table()
            catalog.match_cache.clear()
            cold_algorithm = GMCAlgorithm(
                cached_options.replace(metric=FlopCount())
            )
            start = time.perf_counter()
            cold_solutions = [cold_algorithm.solve(p.expression) for p in problems]
            cold_s = min(cold_s, time.perf_counter() - start)
        for problem in problems:  # warm-up: fill ``cached``'s kernel-cost memo
            cached.solve(problem.expression)
        catalog.match_cache.reset_stats()
        warm_s = math.inf
        for index in range(repeats):
            start = time.perf_counter()
            warm_solutions = [cached.solve(p.expression) for p in problems]
            warm_s = min(warm_s, time.perf_counter() - start)
            if index == 0:
                # Hit rate of the first warm pass, before repeats skew it.
                hit_rate = catalog.match_cache.hit_rate

        for problem, reference, cold, warm in zip(
            problems, baseline_solutions, cold_solutions, warm_solutions
        ):
            if _solutions_differ(reference, cold) or _solutions_differ(reference, warm):
                mismatches.append(str(problem))

        entry = {
            "length": length,
            "chains": len(problems),
            "baseline_repeat_total_s": baseline_repeat_s,
            "cached_cold_total_s": cold_s,
            "cached_warm_total_s": warm_s,
            "warm_hit_rate": hit_rate,
            "warm_speedup_vs_baseline": (
                baseline_repeat_s / warm_s if warm_s > 0 else math.inf
            ),
            "warm_amortization_vs_cold": cold_s / warm_s if warm_s > 0 else math.inf,
        }
        per_length.append(entry)
        print(
            f"length {length:2d}: baseline-repeat {baseline_repeat_s * 1e3:8.2f} ms, "
            f"cached cold {cold_s * 1e3:8.2f} ms, warm {warm_s * 1e3:8.2f} ms, "
            f"hit rate {hit_rate:5.3f}, warm speedup "
            f"{entry['warm_speedup_vs_baseline']:5.2f}x"
        )

    long_entries = [entry for entry in per_length if entry["length"] >= 10]
    long_baseline = sum(e["baseline_repeat_total_s"] for e in long_entries)
    long_warm = sum(e["cached_warm_total_s"] for e in long_entries)
    return {
        "description": (
            "repeated-solve amortization: signature-keyed match cache + DP "
            "pruning (warm) vs the memoized-but-uncached, unpruned PR 1 "
            "baseline; solutions asserted identical across configurations"
        ),
        "per_length": per_length,
        "length_ge_10": {
            "baseline_repeat_total_s": long_baseline,
            "cached_warm_total_s": long_warm,
            "warm_speedup": long_baseline / long_warm if long_warm > 0 else None,
        },
        "solutions_match": not mismatches,
        "mismatches": mismatches,
    }


def make_palette_chain(rng, length, palette=(40, 60, 80, 100, 120)):
    """A conformable chain over a small dimension palette.

    Application chains share dimensions across operands (the paper's test
    set draws from a handful of problem sizes), so signature-keyed layers
    see realistic repeat rates; occasional square-matrix properties and
    transposes keep the kernel choice non-trivial.
    """
    from repro.algebra import Matrix, Property

    square_props = (Property.LOWER_TRIANGULAR, Property.DIAGONAL, Property.SYMMETRIC)
    dims = [rng.choice(palette) for _ in range(length + 1)]
    factors = []
    for index in range(length):
        properties = set()
        if dims[index] == dims[index + 1] and rng.random() < 0.3:
            properties = {rng.choice(square_props)}
        factor = Matrix(f"M{index}", dims[index], dims[index + 1], properties)
        if factor.rows == factor.columns and rng.random() < 0.2:
            factor = factor.T
        factors.append(factor)
    return factors


def run_parallel(chain_lengths, seed, repeats=5, policy="threads:2"):
    """Benchmark the parallel tier against the serial reference, cold.

    Every repeat of every (chain, tier) pair starts genuinely cold --
    interner, inference memo, match cache and kernel-cost memo all empty --
    and the two tiers are interleaved within each repeat so drift hits both
    equally; the per-chain minimum over *repeats* is kept.  Identity is
    asserted on every single solve, not just the timed winner.
    """
    import random as random_module

    rng = random_module.Random(seed)
    chains = [make_palette_chain(rng, length) for length in chain_lengths]
    catalog = KernelCatalog(build_default_kernels(), name="bench-parallel")
    mismatches = []

    def cold_solve(chain, parallelism):
        clear_inference_cache()
        clear_intern_table()
        catalog.match_cache.clear()
        options = CompileOptions(
            catalog=catalog, metric=FlopCount(), prune=True, parallelism=parallelism
        )
        algorithm = GMCAlgorithm(options)
        start = time.perf_counter()
        solution = algorithm.solve(list(chain))
        return time.perf_counter() - start, solution

    serial_best = [math.inf] * len(chains)
    parallel_best = [math.inf] * len(chains)
    for _ in range(repeats):
        for index, chain in enumerate(chains):
            serial_s, serial_solution = cold_solve(chain, "serial")
            parallel_s, parallel_solution = cold_solve(chain, policy)
            serial_best[index] = min(serial_best[index], serial_s)
            parallel_best[index] = min(parallel_best[index], parallel_s)
            if _solutions_differ(serial_solution, parallel_solution) or (
                serial_solution.computable
                and serial_solution.kernel_sequence()
                != parallel_solution.kernel_sequence()
            ):
                mismatches.append(f"length {len(chain)} (chain #{index})")

    per_chain = []
    for index, chain in enumerate(chains):
        entry = {
            "length": len(chain),
            "serial_cold_s": serial_best[index],
            "parallel_cold_s": parallel_best[index],
            "speedup": (
                serial_best[index] / parallel_best[index]
                if parallel_best[index] > 0
                else math.inf
            ),
        }
        per_chain.append(entry)
        print(
            f"chain {len(chain):2d}: serial {serial_best[index] * 1e3:8.2f} ms, "
            f"parallel {parallel_best[index] * 1e3:8.2f} ms, "
            f"speedup {entry['speedup']:5.2f}x"
        )

    serial_total = sum(serial_best)
    parallel_total = sum(parallel_best)
    entry = {
        "description": (
            "intra-solve parallelism: cold long-chain solves (pruning on) "
            "under the serial reference tier vs the parallel tier "
            "(anti-diagonal work queues, shared pruning bound, "
            "signature-keyed decision memo); optimal cost, kernel sequence "
            "and parenthesization asserted identical on every solve"
        ),
        "policy": policy,
        "repeats": repeats,
        "per_chain": per_chain,
        "overall": {
            "serial_cold_total_s": serial_total,
            "parallel_cold_total_s": parallel_total,
            "speedup": (
                serial_total / parallel_total if parallel_total > 0 else math.inf
            ),
        },
        "solutions_match": not mismatches,
        "mismatches": mismatches,
    }
    print(
        f"parallel tier ({policy}): serial {serial_total * 1e3:8.2f} ms, "
        f"parallel {parallel_total * 1e3:8.2f} ms, "
        f"speedup {entry['overall']['speedup']:5.2f}x"
    )
    return entry


def run_trace_overhead(lengths, seed, repeats=11, solves_per_sample=20):
    """Gate: the untraced hot path stays measurably free of tracing cost.

    Three solver instances run warm repeated solves of the same chains,
    interleaved within every repeat so scheduler drift hits all arms
    equally (best-of-*repeats* per arm, *solves_per_sample* solves per
    timing sample so sub-millisecond warm solves stay measurable):

    * **baseline** -- tracing disabled, the solver never traced;
    * **post-traced** -- tracing disabled *now*, but the solver ran one
      traced solve first.  The traced serial fill installs per-cell
      instance-attribute timing wrappers and must remove them in its
      ``try/finally``; if that cleanup ever leaks, this arm pays the
      wrapper cost on every subsequent cell and the gate trips;
    * **traced on** -- a live tracer (reported, not gated: per-diagonal
      spans and per-cell timing wrappers are real, opted-in work).

    ``--check-trace-overhead X`` fails the run when the post-traced arm is
    more than ``X`` slower than the baseline (CI uses 0.03: the untraced
    path must stay within 3% -- dispatch hoisting means its only tracing
    cost is an ``is None`` test per solve, never per DP cell).
    """
    from repro.obs.trace import Tracer

    per_length = []
    mismatches = []
    arms = ("baseline", "post_traced", "traced_on")
    for length in lengths:
        problem = make_problems(length, 1, seed + 31_000 + length)[0]
        algorithms = {}
        for arm in arms:
            catalog = KernelCatalog(build_default_kernels(), name=f"bench-{arm}")
            algorithms[arm] = GMCAlgorithm(
                CompileOptions(catalog=catalog, metric=FlopCount())
            )
        # Warm-up solve per arm (fills each arm's private caches equally);
        # the post-traced arm's warm-up runs traced, then drops the tracer.
        reference = algorithms["baseline"].solve(problem.expression)
        algorithms["post_traced"].tracer = Tracer()
        traced_solution = algorithms["post_traced"].solve(problem.expression)
        algorithms["post_traced"].tracer = None
        algorithms["traced_on"].tracer = Tracer()
        algorithms["traced_on"].solve(problem.expression)
        if _solutions_differ(reference, traced_solution):
            mismatches.append(f"length {length}")

        best = {arm: math.inf for arm in arms}
        for _ in range(repeats):
            for arm in arms:
                algorithm = algorithms[arm]
                if arm == "traced_on":
                    algorithm.tracer = Tracer()  # fresh tree, bounded memory
                start = time.perf_counter()
                for _ in range(solves_per_sample):
                    algorithm.solve(problem.expression)
                best[arm] = min(best[arm], time.perf_counter() - start)

        entry = {
            "length": length,
            "solves_per_sample": solves_per_sample,
            "baseline_s": best["baseline"],
            "post_traced_s": best["post_traced"],
            "traced_on_s": best["traced_on"],
            "untraced_overhead": (
                best["post_traced"] / best["baseline"] - 1.0
                if best["baseline"] > 0
                else math.inf
            ),
            "traced_on_overhead": (
                best["traced_on"] / best["baseline"] - 1.0
                if best["baseline"] > 0
                else math.inf
            ),
        }
        per_length.append(entry)
        print(
            f"length {length:2d}: baseline {best['baseline'] * 1e3:8.2f} ms, "
            f"post-traced {best['post_traced'] * 1e3:8.2f} ms "
            f"({entry['untraced_overhead'] * 100:+6.2f}%), traced on "
            f"{best['traced_on'] * 1e3:8.2f} ms "
            f"({entry['traced_on_overhead'] * 100:+6.2f}%)"
        )

    baseline_total = sum(entry["baseline_s"] for entry in per_length)
    post_total = sum(entry["post_traced_s"] for entry in per_length)
    traced_total = sum(entry["traced_on_s"] for entry in per_length)
    overall = {
        "baseline_total_s": baseline_total,
        "post_traced_total_s": post_total,
        "traced_on_total_s": traced_total,
        "untraced_overhead": (
            post_total / baseline_total - 1.0 if baseline_total > 0 else math.inf
        ),
        "traced_on_overhead": (
            traced_total / baseline_total - 1.0 if baseline_total > 0 else math.inf
        ),
    }
    print(
        f"trace overhead: untraced {overall['untraced_overhead'] * 100:+6.2f}% "
        f"(gated), traced on {overall['traced_on_overhead'] * 100:+6.2f}% "
        f"(informational)"
    )
    return {
        "description": (
            "tracing stays free when disabled: warm repeated solves on a "
            "never-traced solver vs a solver that ran one traced solve "
            "first (leaked instrumentation would slow every later cell) vs "
            "a live tracer; solutions asserted identical"
        ),
        "repeats": repeats,
        "per_length": per_length,
        "overall": overall,
        "solutions_match": not mismatches,
        "mismatches": mismatches,
    }


def run_analytics_overhead(seed, repeats=15, requests_per_sample=40, length=8):
    """Gate: always-on workload analytics stays within a few percent of off.

    One warm in-process serve session runs a signature-equal request
    stream through :func:`repro.service.api.execute_request`, alternating
    *per request* between workload analytics recording (the always-on
    default) and :func:`repro.obs.analytics.analytics_disabled`.  A single
    shared session is essential: two separate sessions differ by several
    percent on identical work (allocator layout, dict insertion order), a
    bias larger than the effect under test.  Each repeat yields a paired
    on/off CPU-time ratio -- ``time.process_time`` so other tenants'
    scheduler preemption does not count against either arm, the cyclic GC
    paused so collection cadence does not alias with the arm pattern --
    and the reported overhead is the **median** of the per-repeat ratios,
    robust to interference bursts that min-of-samples cannot filter.  The
    warm serve path is where the per-request sketch updates (heavy-hitter
    counter, latency quantile buckets, ring slot) land, so it is the
    worst case for the analytics layer's relative cost.

    ``--check-analytics-overhead X`` fails the run when the analytics-on
    arm is more than ``X`` slower than analytics-off (CI uses 0.03).
    """
    from repro.frontend.compiler import Compiler
    from repro.obs.analytics import analytics_disabled, workload_analytics
    from repro.service.api import CompileRequest, execute_request

    problems = make_problems(length, 3, seed + 47_000)
    sources = [problem_source(problem, "an") for problem in problems]
    requests = [CompileRequest(source=source) for source in sources]
    session = Compiler()

    workload_analytics().reset()
    # Warm-up: fill the plan cache so the timed samples measure the warm
    # serve path (where per-request analytics cost is proportionally
    # largest), not cold DP solves.
    for request in requests:
        response = execute_request(request, compiler=session)
        assert response.ok, response.error

    clock = time.process_time
    passes = max(1, requests_per_sample // len(requests))
    ratios = []
    totals = {"analytics_on": 0.0, "analytics_off": 0.0}
    for repeat in range(repeats):
        on_s = off_s = 0.0
        gc.collect()
        gc.disable()
        try:
            for index in range(passes):
                # Alternate which arm goes first so within-pass drift
                # cancels instead of consistently taxing one arm.
                on_first = (index + repeat) % 2 == 0
                for request in requests:
                    if on_first:
                        start = clock()
                        execute_request(request, compiler=session)
                        on_s += clock() - start
                    with analytics_disabled():
                        start = clock()
                        execute_request(request, compiler=session)
                        off_s += clock() - start
                    if not on_first:
                        start = clock()
                        execute_request(request, compiler=session)
                        on_s += clock() - start
        finally:
            gc.enable()
        totals["analytics_on"] += on_s
        totals["analytics_off"] += off_s
        ratios.append(on_s / off_s - 1.0 if off_s > 0 else math.inf)

    recorded = workload_analytics().state()["requests"]
    workload_analytics().reset()
    overhead = statistics.median(ratios)
    entry = {
        "description": (
            "warm in-process serve CPU time with workload analytics "
            "recording vs inside analytics_disabled(), one shared session, "
            "per-request interleaving, median of paired per-repeat ratios"
        ),
        "length": length,
        "repeats": repeats,
        "requests_per_sample": passes * len(requests),
        "analytics_on_s": totals["analytics_on"],
        "analytics_off_s": totals["analytics_off"],
        "overhead": overhead,
        "repeat_overheads": ratios,
        "requests_recorded": recorded,
    }
    print(
        f"analytics overhead: on {totals['analytics_on'] * 1e3:8.2f} ms, "
        f"off {totals['analytics_off'] * 1e3:8.2f} ms CPU "
        f"({overhead * 100:+6.2f}% median of {repeats} paired repeats, "
        f"{passes * len(requests)} warm requests per arm per repeat)"
    )
    return entry


def problem_source(problem, tag):
    """Render a generated chain as DSL text with per-*tag* operand names.

    Tagged copies of one problem are *structurally similar*: identical
    shapes, properties and equality structure under fresh names -- the
    workload shape the warm-pool service amortizes across.
    """
    lines = []
    for operand in problem.operands:
        properties = ", ".join(sorted(p.value for p in operand.properties))
        lines.append(
            f"Matrix {operand.name}_{tag} ({operand.rows}, {operand.columns}) "
            f"<{properties}>"
        )
    names = sorted((op.name for op in problem.operands), key=len, reverse=True)
    pattern = re.compile(r"\b(" + "|".join(map(re.escape, names)) + r")\b")
    expression = pattern.sub(lambda match: f"{match.group(1)}_{tag}", str(problem.expression))
    lines.append(f"X := {expression}")
    return "\n".join(lines) + "\n"


def run_service(workers, batch_size, rounds, seed, length=8, in_process=False):
    """Benchmark warm-pool batch throughput over structurally similar chains.

    Builds ``batch_size`` base chains of *length* factors, then submits
    ``rounds + 1`` batches of name-renamed (signature-equal) copies through
    a :class:`repro.service.pool.WorkerPool`: the first batch is the cold
    fill, the remaining *rounds* measure warm throughput.  Every response is
    checked against a direct ``compile_source`` reference, and the pooled
    match-cache hit rate over the warm batches is computed from the
    ``stats()`` delta -- the same numbers ``GET /stats`` serves in the HTTP
    front-end.
    """
    from repro.frontend import Compiler
    from repro.service.api import CompileRequest
    from repro.service.pool import create_executor

    problems = make_problems(length, batch_size, seed + 7_000)

    mismatches = []
    # Fork the workers *before* compiling the references: under fork, a
    # child inherits the parent's caches, so warming the parent first would
    # make the "cold" batch secretly warm.  The references reuse one warm
    # Compiler session -- the same class each pool worker holds.
    executor = create_executor(workers=workers, in_process=in_process)
    reference_compiler = Compiler()
    references = [
        list(
            reference_compiler.compile(problem_source(problem, "ref"))
            .assignments[0]
            .kernel_sequence
        )
        for problem in problems
    ]
    try:
        def submit_round(tag):
            requests = [
                CompileRequest(source=problem_source(problem, tag))
                for problem in problems
            ]
            start = time.perf_counter()
            responses = executor.compile_batch(requests)
            elapsed = time.perf_counter() - start
            for problem, reference, response in zip(problems, references, responses):
                if not response.ok or response.assignments[0].kernels != reference:
                    mismatches.append(f"{problem} [{tag}]")
            return elapsed

        cold_s = submit_round("r0")
        stats_cold = executor.stats()["caches"]
        warm_s = sum(submit_round(f"r{index + 1}") for index in range(rounds))
        stats_warm = executor.stats()["caches"]

        def layer_delta(layer):
            hits = stats_warm[layer]["hits"] - stats_cold[layer]["hits"]
            lookups = hits + stats_warm[layer]["misses"] - stats_cold[layer]["misses"]
            return hits, lookups

        # Warm signature-equal traffic is answered by the plan cache (the
        # layer above the solvers); the match cache underneath only sees
        # cold solves, so its warm delta is reported but no longer gated.
        plan_hits, plan_lookups = layer_delta("plan_cache")
        warm_hits, warm_lookups = layer_delta("match_cache")
        warm_requests = batch_size * rounds
        entry = {
            "description": (
                "warm-pool batch throughput over structurally similar chains: "
                "one cold batch fills the caches, subsequent batches of "
                "renamed (signature-equal) copies measure the amortized "
                "service path; kernel sequences asserted identical to direct "
                "compile_source"
            ),
            "mode": "in-process" if executor.workers == 0 else "pool",
            "workers": executor.workers,
            "chain_length": length,
            "batch_size": batch_size,
            "warm_rounds": rounds,
            "cold_batch_s": cold_s,
            "warm_total_s": warm_s,
            "cold_requests_per_s": batch_size / cold_s if cold_s > 0 else math.inf,
            "warm_requests_per_s": (
                warm_requests / warm_s if warm_s > 0 else math.inf
            ),
            "warm_batch_speedup_vs_cold": (
                (cold_s * rounds) / warm_s if warm_s > 0 else math.inf
            ),
            "warm_match_hit_rate": (
                warm_hits / warm_lookups if warm_lookups > 0 else 0.0
            ),
            "warm_plan_hit_rate": (
                plan_hits / plan_lookups if plan_lookups > 0 else 0.0
            ),
            "solutions_match": not mismatches,
            "mismatches": mismatches,
        }
    finally:
        executor.close()
    print(
        f"service ({entry['mode']}, {workers} workers): cold batch "
        f"{cold_s * 1e3:8.2f} ms, warm {entry['warm_requests_per_s']:7.1f} req/s, "
        f"warm plan hit rate {entry['warm_plan_hit_rate']:5.3f}, "
        f"warm-vs-cold speedup {entry['warm_batch_speedup_vs_cold']:5.2f}x"
    )
    return entry


def run_persistence(workers, batch_size, seed, length=8):
    """Benchmark snapshot-backed warm boot: restart the pool, stay warm.

    Pool A compiles *batch_size* chains cold and persists its merged cache
    snapshot on shutdown.  Pool B -- fresh worker processes pointed at the
    same snapshot directory -- then serves renamed (signature-equal) copies:
    its plan-cache hit rate over that first batch is the warm-boot signal
    (1.0 means every request skipped the DP entirely), and every kernel
    sequence is asserted identical to a plan-cache-disabled cold solve.
    """
    import shutil
    import tempfile

    from repro.frontend import Compiler
    from repro.service.api import CompileRequest
    from repro.service.pool import create_executor

    problems = make_problems(length, batch_size, seed + 11_000)
    snapshot_dir = tempfile.mkdtemp(prefix="repro-bench-snapshot-")
    mismatches = []

    def submit(executor, tag):
        requests = [
            CompileRequest(source=problem_source(problem, tag))
            for problem in problems
        ]
        start = time.perf_counter()
        responses = executor.compile_batch(requests)
        return time.perf_counter() - start, responses

    try:
        # Fork the cold pool before compiling references (under fork a child
        # inherits the parent's process-global caches; the per-session plan
        # cache is immune, but timings should stay honest too).
        cold_pool = create_executor(workers=workers, snapshot_dir=snapshot_dir)
        reference_compiler = Compiler(CompileOptions(plan_cache=False))
        references = [
            list(
                reference_compiler.compile(problem_source(problem, "ref"))
                .assignments[0]
                .kernel_sequence
            )
            for problem in problems
        ]
        try:
            cold_boot_s, responses = submit(cold_pool, "cold")
            for problem, reference, response in zip(problems, references, responses):
                if not response.ok or response.assignments[0].kernels != reference:
                    mismatches.append(f"{problem} [cold]")
        finally:
            cold_pool.close()  # persists the merged snapshot

        warm_pool = create_executor(workers=workers, snapshot_dir=snapshot_dir)
        try:
            before = warm_pool.stats()["caches"]["plan_cache"]
            warm_boot_s, responses = submit(warm_pool, "warm")
            after = warm_pool.stats()["caches"]["plan_cache"]
            snapshot_stats = warm_pool.stats().get("snapshot", {})
            workers_loaded = (
                snapshot_stats.get("workers_loaded")
                if isinstance(snapshot_stats, dict)
                else None
            )
            for problem, reference, response in zip(problems, references, responses):
                if not response.ok or response.assignments[0].kernels != reference:
                    mismatches.append(f"{problem} [warm]")
        finally:
            warm_pool.close()

        hits = after["hits"] - before["hits"]
        lookups = hits + after["misses"] - before["misses"]
        entry = {
            "description": (
                "snapshot-backed warm boot: a restarted worker pool pointed "
                "at the previous pool's snapshot dir serves its first batch "
                "of renamed (signature-equal) chains from the plan cache; "
                "kernel sequences asserted identical to plan-cache-disabled "
                "cold solves"
            ),
            "workers": workers,
            "chain_length": length,
            "batch_size": batch_size,
            "cold_boot_batch_s": cold_boot_s,
            "warm_boot_batch_s": warm_boot_s,
            "warm_boot_speedup_vs_cold": (
                cold_boot_s / warm_boot_s if warm_boot_s > 0 else math.inf
            ),
            "warm_boot_plan_hit_rate": hits / lookups if lookups > 0 else 0.0,
            "warm_boot_workers_loaded": workers_loaded,
            "solutions_match": not mismatches,
            "mismatches": mismatches,
        }
    finally:
        shutil.rmtree(snapshot_dir, ignore_errors=True)
    print(
        f"warm boot ({workers} workers): cold-boot batch "
        f"{cold_boot_s * 1e3:8.2f} ms, warm-boot batch "
        f"{warm_boot_s * 1e3:8.2f} ms, plan hit rate "
        f"{entry['warm_boot_plan_hit_rate']:5.3f}, speedup "
        f"{entry['warm_boot_speedup_vs_cold']:5.2f}x"
    )
    return entry


def run_jacobian(models, blocks):
    """Benchmark the DAG pipeline on Solverz-style Jacobian traffic.

    :func:`repro.experiments.workload.jacobian_workload` expands a small
    symbolic model into *models* structurally-sibling multi-assignment DAG
    programs (one shared Gram segment plus *blocks* Jacobian blocks each,
    connected by references).  One warm :class:`Compiler` session compiles
    them all; each chain segment consults the plan cache independently, so
    after the first model every sibling segment should hit.  Records the
    segment-level plan-cache hit rate (the ``segments`` telemetry layer) and
    asserts every kernel sequence identical to a plan-cache-disabled
    reference solve (``--check-dag-plan-hit-rate`` gates the rate in CI).
    """
    from repro.core import segment_telemetry
    from repro.experiments.workload import jacobian_workload
    from repro.frontend import Compiler

    problems = jacobian_workload(models=models, blocks=blocks)
    mismatches = []
    reference = Compiler(CompileOptions(plan_cache=False))
    reference_result = reference.compile(problems[0].source)
    reference_gram = reference_result.assignment("G").kernel_sequence
    reference_block = reference_result.assignment(
        problems[0].targets[0]
    ).kernel_sequence

    session = Compiler()
    telemetry = segment_telemetry()
    telemetry.reset_stats()
    start = time.perf_counter()
    results = [session.compile(problems[0].source)]
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    for problem in problems[1:]:
        results.append(session.compile(problem.source))
    warm_s = time.perf_counter() - start
    stats = telemetry.stats()

    for problem, result in zip(problems, results):
        if result.assignment("G").kernel_sequence != reference_gram:
            mismatches.append(f"{problem.identifier}: G")
        for target in problem.targets:
            if result.assignment(target).kernel_sequence != reference_block:
                mismatches.append(f"{problem.identifier}: {target}")

    warm_models = max(len(problems) - 1, 1)
    entry = {
        "description": (
            "Jacobian DAG workload: structurally-sibling multi-assignment "
            "programs (shared Gram segment + per-equation Jacobian blocks, "
            "from symbolic differentiation of a small model) compiled on one "
            "warm session; each chain segment hits the plan cache "
            "independently; kernel sequences asserted identical to a "
            "plan-cache-disabled reference"
        ),
        "models": len(problems),
        "blocks_per_model": blocks,
        "segments_per_model": blocks + 1,
        "cold_model_s": cold_s,
        "warm_models_total_s": warm_s,
        "warm_model_mean_s": warm_s / warm_models,
        "warm_amortization_vs_cold": (
            cold_s * warm_models / warm_s if warm_s > 0 else math.inf
        ),
        "segment_lookups": stats["hits"] + stats["misses"],
        "segment_plan_hits": stats["hits"],
        "segment_plan_hit_rate": stats["hit_rate"],
        "cse_reuses": stats["cse_reuses"],
        "solutions_match": not mismatches,
        "mismatches": mismatches,
    }
    print(
        f"jacobian DAGs ({entry['models']} models x {blocks} blocks): cold "
        f"model {cold_s * 1e3:8.2f} ms, warm mean "
        f"{entry['warm_model_mean_s'] * 1e3:8.2f} ms, segment plan hit rate "
        f"{entry['segment_plan_hit_rate']:5.3f}, amortization "
        f"{entry['warm_amortization_vs_cold']:5.2f}x"
    )
    return entry


#: Programs the execution-tier section runs end to end (name, DSL source).
#: Sized so a run takes milliseconds, shaped so the plans exercise the
#: interesting kernel families: triangular/SPD solves, a pure product chain,
#: and a Kalman-style DAG whose plan uses transposed solve variants.
EXECUTION_PROGRAMS = (
    (
        "solve_chain",
        "Matrix A (300, 300) <spd>\n"
        "Matrix B (300, 200) <full_rank>\n"
        "Matrix C (200, 200) <lower_triangular, non_singular>\n"
        "X := A^-1 * B * C^T\n",
    ),
    (
        "product_chain",
        "Matrix P (120, 400) <full_rank>\n"
        "Matrix Q (400, 80) <full_rank>\n"
        "Matrix R (80, 300) <full_rank>\n"
        "Matrix S (300, 60) <full_rank>\n"
        "Y := P * Q * R * S\n",
    ),
    (
        "kalman_dag",
        "Matrix Hk (50, 90) <full_rank>\n"
        "Matrix Pk (90, 90) <spd>\n"
        "Matrix Bk (50, 40) <full_rank>\n"
        "G := Hk * Pk * Hk^T\n"
        "J := G^-1 * Bk\n"
        "K := Pk * Hk^T * (Hk * Pk^-1 * Hk^T)^-1\n",
    ),
)


def run_execution(seed, repeats=5):
    """Benchmark the execution tier: emitted modules vs the interpreter.

    For every :data:`EXECUTION_PROGRAMS` entry, one warm
    :class:`repro.frontend.Compiler` session compiles the program, the
    ``module`` emitter renders it as a standalone module
    (:mod:`repro.exec.emitter`), and the loader imports it
    (:mod:`repro.exec.loader`).  The section then times the loaded module's
    entrypoint against the interpreted :class:`repro.runtime.Executor` on
    identical seeded operands (min-of-N per engine) and records the one-time
    emit/import cost.  Both engines must agree numerically -- the maximum
    relative error is recorded per program, and ``--check-execute-identity``
    names this section's identity assertion in the CI wiring.
    """
    import numpy as np

    from repro.exec.emitter import plan_signature
    from repro.exec.loader import ModuleLoader
    from repro.frontend import Compiler
    from repro.runtime.executor import Executor
    from repro.runtime.operands import random_environment

    session = Compiler()
    loader = ModuleLoader()
    per_program = []
    mismatches = []
    for name, source in EXECUTION_PROGRAMS:
        result = session.compile(source)
        program = result.stitched_program()
        environment = dict(random_environment(result, seed=seed))

        start = time.perf_counter()
        module_source = result.emit_stitched("module")
        emit_s = time.perf_counter() - start
        start = time.perf_counter()
        loaded = loader.load(module_source, plan_signature(result))
        import_s = time.perf_counter() - start

        module_value = loaded.run(environment)
        interpreter_value = Executor().execute(program, dict(environment))
        scale = max(1.0, float(np.max(np.abs(interpreter_value))))
        max_rel_error = (
            float(np.max(np.abs(module_value - interpreter_value))) / scale
        )
        if max_rel_error > 1e-9:
            mismatches.append(f"{name}: max rel error {max_rel_error:.2e}")

        module_best = math.inf
        interpreter_best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            loaded.run(environment)
            module_best = min(module_best, time.perf_counter() - start)
            start = time.perf_counter()
            Executor().execute(program, dict(environment))
            interpreter_best = min(
                interpreter_best, time.perf_counter() - start
            )

        entry = {
            "program": name,
            "calls": len(program.calls),
            "implementation": loaded.implementation,
            "emit_ms": emit_s * 1e3,
            "import_ms": import_s * 1e3,
            "module_run_ms": module_best * 1e3,
            "interpreter_run_ms": interpreter_best * 1e3,
            "module_vs_interpreter": (
                interpreter_best / module_best if module_best > 0 else math.inf
            ),
            "max_rel_error": max_rel_error,
        }
        per_program.append(entry)
        print(
            f"{name:>14s}: module {entry['module_run_ms']:8.3f} ms, "
            f"interpreter {entry['interpreter_run_ms']:8.3f} ms "
            f"({entry['module_vs_interpreter']:5.2f}x), emit+import "
            f"{(emit_s + import_s) * 1e3:7.2f} ms, max rel err "
            f"{max_rel_error:.2e} [{entry['implementation']}]"
        )

    module_total = sum(e["module_run_ms"] for e in per_program)
    interpreter_total = sum(e["interpreter_run_ms"] for e in per_program)
    return {
        "description": (
            "execution tier: emitted standalone modules (repro.exec) vs the "
            "interpreted runtime Executor on identical seeded operands; "
            "min-of-N per engine, one-time emit/import cost recorded "
            "separately, engines asserted numerically identical"
        ),
        "config": {"seed": seed, "repeats": repeats},
        "per_program": per_program,
        "overall": {
            "module_total_ms": module_total,
            "interpreter_total_ms": interpreter_total,
            "speedup": (
                interpreter_total / module_total if module_total > 0 else math.inf
            ),
        },
        "module_cache": loader.stats(),
        "solutions_match": not mismatches,
        "mismatches": mismatches,
    }


def run(lengths, chains_per_length, repeats, seed):
    per_length = []
    mismatches = []
    for length in lengths:
        problems = make_problems(length, chains_per_length, seed + length)

        # Legacy configuration: reference inference, reference match binding,
        # no hash consing, no match caching, no split pruning.  The global
        # caches are cleared first so neither mode free-rides on state
        # warmed up by the other.
        clear_inference_cache()
        clear_intern_table()
        with legacy_inference(), interning_disabled(), legacy_binding(), \
                match_caching_disabled():
            legacy_times, legacy_solutions = time_solves(problems, repeats, prune=False)

        clear_inference_cache()
        clear_intern_table()
        memo_times, memo_solutions = time_solves(problems, repeats)

        for problem, legacy, fast in zip(problems, legacy_solutions, memo_solutions):
            same = (
                legacy.computable == fast.computable
                and math.isclose(
                    float(legacy.optimal_cost),
                    float(fast.optimal_cost),
                    rel_tol=1e-9,
                    abs_tol=1e-9,
                )
                if legacy.computable
                else legacy.computable == fast.computable
            )
            if same and legacy.computable:
                same = legacy.parenthesization() == fast.parenthesization()
            if not same:
                mismatches.append(str(problem))

        legacy_total = sum(legacy_times)
        memo_total = sum(memo_times)
        entry = {
            "length": length,
            "chains": len(problems),
            "repeats": repeats,
            "legacy_total_s": legacy_total,
            "memoized_total_s": memo_total,
            "legacy_mean_ms": statistics.mean(legacy_times) * 1e3,
            "memoized_mean_ms": statistics.mean(memo_times) * 1e3,
            "speedup": legacy_total / memo_total if memo_total > 0 else math.inf,
        }
        per_length.append(entry)
        print(
            f"length {length:2d}: legacy {entry['legacy_mean_ms']:8.3f} ms/chain, "
            f"memoized {entry['memoized_mean_ms']:8.3f} ms/chain, "
            f"speedup {entry['speedup']:5.2f}x"
        )

    legacy_total = sum(entry["legacy_total_s"] for entry in per_length)
    memo_total = sum(entry["memoized_total_s"] for entry in per_length)
    long_entries = [entry for entry in per_length if entry["length"] >= 10]
    long_legacy = sum(entry["legacy_total_s"] for entry in long_entries)
    long_memo = sum(entry["memoized_total_s"] for entry in long_entries)
    return {
        "description": (
            "GMC generation time: memoized inference + hash consing vs legacy "
            "reference path (legacy_inference + legacy_binding + "
            "interning_disabled; always-on identity/token/cost caches remain "
            "active in both modes, so the speedup is a lower bound vs the seed)"
        ),
        "config": {
            "lengths": list(lengths),
            "chains_per_length": chains_per_length,
            "repeats": repeats,
            "seed": seed,
            "metric": "flops",
        },
        "per_length": per_length,
        "overall": {
            "legacy_total_s": legacy_total,
            "memoized_total_s": memo_total,
            "speedup": legacy_total / memo_total if memo_total > 0 else math.inf,
        },
        "length_ge_10": {
            "legacy_total_s": long_legacy,
            "memoized_total_s": long_memo,
            "speedup": long_legacy / long_memo if long_memo > 0 else None,
        },
        "solutions_match": not mismatches,
        "mismatches": mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min-length", type=int, default=3)
    parser.add_argument("--max-length", type=int, default=14)
    parser.add_argument("--chains-per-length", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI-sized run (lengths 3-10, 2 chains each, 1 repeat)",
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless the length>=10 speedup is at least X",
    )
    parser.add_argument(
        "--check-hit-rate",
        type=float,
        default=None,
        metavar="R",
        help=(
            "exit non-zero unless the warm match-cache hit rate on the "
            "chain-12 case (or the longest benchmarked length) is at least R"
        ),
    )
    parser.add_argument(
        "--check-warm-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit non-zero unless the warm cached repeated-solve speedup over "
            "the uncached baseline on chains >= 10 is at least X"
        ),
    )
    parser.add_argument(
        "--check-parallel-identity",
        action="store_true",
        help=(
            "exit non-zero unless every parallel-tier solve of the "
            "intra-solve parallelism section was bit-identical to the "
            "serial reference (cost, kernel sequence, parenthesization)"
        ),
    )
    parser.add_argument(
        "--check-parallel-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit non-zero unless the parallel tier's aggregate cold-solve "
            "speedup on chains >= 20 is at least X"
        ),
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help=(
            "also benchmark warm-pool batch throughput through the "
            "compilation service (repro.service worker pool)"
        ),
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="worker processes for the --serve section (default: 2)",
    )
    parser.add_argument(
        "--serve-batch",
        type=int,
        default=8,
        help="requests per service batch (default: 8)",
    )
    parser.add_argument(
        "--serve-rounds",
        type=int,
        default=3,
        help="warm batches measured after the cold fill (default: 3)",
    )
    parser.add_argument(
        "--check-serve-hit-rate",
        type=float,
        default=None,
        metavar="R",
        help=(
            "exit non-zero unless the pooled warm plan-cache hit rate of "
            "the --serve section is at least R"
        ),
    )
    parser.add_argument(
        "--persist-workers",
        type=int,
        default=2,
        help="worker processes for the warm-boot section (default: 2)",
    )
    parser.add_argument(
        "--persist-batch",
        type=int,
        default=8,
        help="chains per warm-boot batch (default: 8)",
    )
    parser.add_argument(
        "--check-plan-hit-rate",
        type=float,
        default=None,
        metavar="R",
        help=(
            "exit non-zero unless the restarted (snapshot-loaded) pool's "
            "plan-cache hit rate on its first batch is at least R"
        ),
    )
    parser.add_argument(
        "--jacobian-models",
        type=int,
        default=None,
        help=(
            "model instances for the Jacobian DAG section "
            "(default: 12 with --smoke, 25 otherwise)"
        ),
    )
    parser.add_argument(
        "--jacobian-blocks",
        type=int,
        default=None,
        help=(
            "Jacobian blocks per model for the DAG section "
            "(default: 6 with --smoke, 8 otherwise)"
        ),
    )
    parser.add_argument(
        "--check-dag-plan-hit-rate",
        type=float,
        default=None,
        metavar="R",
        help=(
            "exit non-zero unless the segment-level plan-cache hit rate of "
            "the Jacobian DAG section is at least R"
        ),
    )
    parser.add_argument(
        "--check-execute-identity",
        action="store_true",
        help=(
            "exit non-zero unless every emitted-module run of the execution "
            "tier section matched the interpreted Executor numerically on "
            "identical operands"
        ),
    )
    parser.add_argument(
        "--check-trace-overhead",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit non-zero unless the untraced hot path's overhead vs a "
            "never-traced baseline stays below X (CI uses 0.03: tracing "
            "must be measurably free when disabled)"
        ),
    )
    parser.add_argument(
        "--check-analytics-overhead",
        type=float,
        default=None,
        metavar="X",
        help=(
            "exit non-zero unless the warm serve path with workload "
            "analytics recording stays within X of analytics-off "
            "(CI uses 0.03: the always-on sketches must cost at most a "
            "few percent)"
        ),
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_generation.json",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Lengths reach 12 so the CI hit-rate gate sees the chain-12 case.
        lengths = range(3, 13)
        chains_per_length, repeats = 2, 1
    else:
        lengths = range(args.min_length, args.max_length + 1)
        chains_per_length, repeats = args.chains_per_length, args.repeats
    if not lengths or min(lengths) < 2 or chains_per_length < 1 or repeats < 1:
        parser.error(
            "need max-length >= min-length >= 2, chains-per-length >= 1 and repeats >= 1"
        )

    print("== memoized pipeline vs legacy reference path ==")
    report = run(lengths, chains_per_length, repeats, args.seed)
    print("\n== match cache + DP pruning vs uncached baseline (repeated solves) ==")
    report["match_cache"] = run_match_cache(
        lengths, chains_per_length, args.seed, repeats=repeats
    )
    print("\n== intra-solve parallelism: serial vs parallel tier, cold chains >= 20 ==")
    if args.smoke:
        parallel_lengths, parallel_repeats = (20, 22), 3
    else:
        parallel_lengths, parallel_repeats = (20, 22, 24, 22), 5
    report["parallel"] = run_parallel(
        parallel_lengths, args.seed, repeats=parallel_repeats
    )
    if args.serve:
        print("\n== compilation service: warm-pool batch throughput ==")
        report["service"] = run_service(
            workers=args.serve_workers,
            batch_size=args.serve_batch,
            rounds=args.serve_rounds,
            seed=args.seed,
        )
    print("\n== snapshot-backed warm boot: restarted pool, first batch ==")
    report["persistence"] = run_persistence(
        workers=args.persist_workers,
        batch_size=args.persist_batch,
        seed=args.seed,
    )
    print("\n== Jacobian DAG workload: per-segment plan-cache amortization ==")
    jacobian_models = args.jacobian_models or (12 if args.smoke else 25)
    jacobian_blocks = args.jacobian_blocks or (6 if args.smoke else 8)
    report["jacobian"] = run_jacobian(jacobian_models, jacobian_blocks)
    print("\n== execution tier: emitted modules vs interpreted Executor ==")
    report["execution"] = run_execution(args.seed, repeats=3 if args.smoke else 5)
    print("\n== trace overhead: untraced hot path vs never-traced baseline ==")
    trace_lengths = (10, 12) if args.smoke else (10, 12, 14)
    report["trace_overhead"] = run_trace_overhead(trace_lengths, args.seed)
    print("\n== analytics overhead: warm serve path, recording on vs off ==")
    report["analytics_overhead"] = run_analytics_overhead(
        args.seed, repeats=9 if args.smoke else 15
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    overall = report["overall"]["speedup"]
    long_speedup = report["length_ge_10"]["speedup"]
    print(f"overall speedup: {overall:.2f}x")
    if long_speedup is not None:
        print(f"length >= 10 speedup: {long_speedup:.2f}x")
    warm_speedup = report["match_cache"]["length_ge_10"]["warm_speedup"]
    if warm_speedup is not None:
        print(f"warm repeated-solve speedup (length >= 10): {warm_speedup:.2f}x")

    if not report["solutions_match"]:
        print("ERROR: legacy and memoized solutions diverged", file=sys.stderr)
        return 1
    if not report["match_cache"]["solutions_match"]:
        print(
            "ERROR: cached/pruned and baseline solutions diverged", file=sys.stderr
        )
        return 1
    if args.check_speedup is not None:
        reference = long_speedup if long_speedup is not None else overall
        if reference < args.check_speedup:
            print(
                f"ERROR: speedup {reference:.2f}x below required "
                f"{args.check_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    if args.check_hit_rate is not None:
        entries = report["match_cache"]["per_length"]
        gated = [e for e in entries if e["length"] == 12] or entries[-1:]
        hit_rate = gated[0]["warm_hit_rate"]
        if hit_rate < args.check_hit_rate:
            print(
                f"ERROR: warm match-cache hit rate {hit_rate:.3f} on the "
                f"chain-{gated[0]['length']} case below required "
                f"{args.check_hit_rate:.3f}",
                file=sys.stderr,
            )
            return 1
    parallel = report["parallel"]
    if not parallel["solutions_match"]:
        print(
            "ERROR: parallel-tier solutions diverged from the serial reference"
            + (
                " (--check-parallel-identity)"
                if args.check_parallel_identity
                else ""
            ),
            file=sys.stderr,
        )
        return 1
    parallel_speedup = parallel["overall"]["speedup"]
    print(f"parallel-tier cold speedup (chains >= 20): {parallel_speedup:.2f}x")
    if (
        args.check_parallel_speedup is not None
        and parallel_speedup < args.check_parallel_speedup
    ):
        print(
            f"ERROR: parallel-tier speedup {parallel_speedup:.2f}x below "
            f"required {args.check_parallel_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.check_warm_speedup is not None:
        if warm_speedup is None or warm_speedup < args.check_warm_speedup:
            print(
                f"ERROR: warm repeated-solve speedup "
                f"{warm_speedup if warm_speedup is not None else float('nan'):.2f}x "
                f"below required {args.check_warm_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    if args.serve:
        service = report["service"]
        if not service["solutions_match"]:
            print(
                "ERROR: service responses diverged from direct compile_source",
                file=sys.stderr,
            )
            return 1
        if (
            args.check_serve_hit_rate is not None
            and service["warm_plan_hit_rate"] < args.check_serve_hit_rate
        ):
            print(
                f"ERROR: service warm plan-cache hit rate "
                f"{service['warm_plan_hit_rate']:.3f} below required "
                f"{args.check_serve_hit_rate:.3f}",
                file=sys.stderr,
            )
            return 1
    persistence = report["persistence"]
    if not persistence["solutions_match"]:
        print(
            "ERROR: warm-boot responses diverged from cold solves",
            file=sys.stderr,
        )
        return 1
    if (
        args.check_plan_hit_rate is not None
        and persistence["warm_boot_plan_hit_rate"] < args.check_plan_hit_rate
    ):
        print(
            f"ERROR: warm-boot plan-cache hit rate "
            f"{persistence['warm_boot_plan_hit_rate']:.3f} below required "
            f"{args.check_plan_hit_rate:.3f}",
            file=sys.stderr,
        )
        return 1
    jacobian = report["jacobian"]
    if not jacobian["solutions_match"]:
        print(
            "ERROR: Jacobian DAG kernel sequences diverged from the "
            "plan-cache-disabled reference",
            file=sys.stderr,
        )
        return 1
    if (
        args.check_dag_plan_hit_rate is not None
        and jacobian["segment_plan_hit_rate"] < args.check_dag_plan_hit_rate
    ):
        print(
            f"ERROR: Jacobian segment-level plan-cache hit rate "
            f"{jacobian['segment_plan_hit_rate']:.3f} below required "
            f"{args.check_dag_plan_hit_rate:.3f}",
            file=sys.stderr,
        )
        return 1
    execution = report["execution"]
    if not execution["solutions_match"]:
        print(
            "ERROR: emitted-module runs diverged from the interpreted "
            "Executor: " + "; ".join(execution["mismatches"])
            + (
                " (--check-execute-identity)"
                if args.check_execute_identity
                else ""
            ),
            file=sys.stderr,
        )
        return 1
    trace_overhead = report["trace_overhead"]
    if not trace_overhead["solutions_match"]:
        print(
            "ERROR: traced solves diverged from untraced solves",
            file=sys.stderr,
        )
        return 1
    if (
        args.check_trace_overhead is not None
        and trace_overhead["overall"]["untraced_overhead"]
        >= args.check_trace_overhead
    ):
        print(
            f"ERROR: untraced hot-path overhead "
            f"{trace_overhead['overall']['untraced_overhead'] * 100:.2f}% not "
            f"below the required {args.check_trace_overhead * 100:.2f}%",
            file=sys.stderr,
        )
        return 1
    if (
        args.check_analytics_overhead is not None
        and report["analytics_overhead"]["overhead"]
        >= args.check_analytics_overhead
    ):
        print(
            f"ERROR: warm-serve analytics overhead "
            f"{report['analytics_overhead']['overhead'] * 100:.2f}% not "
            f"below the required {args.check_analytics_overhead * 100:.2f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

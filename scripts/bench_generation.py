#!/usr/bin/env python
"""Generation-time benchmark: memoized vs. legacy GMC compilation.

Times the GMC dynamic program (``GMCAlgorithm.solve``) over random
generalized chains of lengths 3-14 under two configurations:

* **memoized** -- the default pipeline: hash-consed expressions, single-pass
  memoized property inference, cached identity keys and kernel costs;
* **legacy** -- the reference pipeline: per-predicate recursive inference
  (``legacy_inference()``), the reference matcher acceptance path that
  re-walks patterns per candidate (``legacy_binding()``), and no hash
  consing (``interning_disabled()``).

Note the legacy configuration still benefits from the always-on caches that
have no toggle (constructor-primed expression hashes/keys, cached matcher
tokens and subject flattening, the kernel-cost cache), so the measured
speedup is a *lower bound* on memoized-vs-seed: those caches only make the
legacy baseline faster, never slower.

For every chain the two configurations must produce identical solutions
(optimal cost and parenthesization); the script asserts this and records the
outcome, so the benchmark doubles as an end-to-end equivalence check on the
measured workload.

Results are written to ``BENCH_generation.json`` (override with
``--output``).  Usage::

    PYTHONPATH=src python scripts/bench_generation.py           # full run
    PYTHONPATH=src python scripts/bench_generation.py --smoke   # CI-sized

``--check-speedup X`` exits non-zero when the aggregate speedup on chains of
length >= 10 falls below ``X`` (used by CI to catch perf regressions).
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from pathlib import Path

from repro.algebra import clear_inference_cache, clear_intern_table
from repro.algebra.inference import legacy_inference
from repro.algebra.interning import interning_disabled
from repro.core import GMCAlgorithm
from repro.cost import FlopCount
from repro.experiments.workload import ChainGenerator
from repro.matching.discrimination_net import legacy_binding


def make_problems(length: int, count: int, seed: int):
    """Random well-formed chains of exactly *length* factors."""
    generator = ChainGenerator(
        min_length=length,
        max_length=length,
        size_choices=tuple(range(50, 301, 50)),
        vector_probability=0.10,
        square_probability=0.40,
        transpose_probability=0.25,
        inverse_probability=0.25,
        property_probability=0.60,
        seed=seed,
    )
    return generator.generate_many(count)


def time_solves(problems, repeats: int):
    """Solve every problem *repeats* times on a fresh algorithm.

    Returns (per-problem best times in seconds, solutions of the last pass).
    The metric instance is fresh per call so its kernel-cost cache never
    leaks across configurations.
    """
    algorithm = GMCAlgorithm(metric=FlopCount())
    best = [math.inf] * len(problems)
    solutions = [None] * len(problems)
    for _ in range(repeats):
        for index, problem in enumerate(problems):
            start = time.perf_counter()
            solution = algorithm.solve(problem.expression)
            elapsed = time.perf_counter() - start
            if elapsed < best[index]:
                best[index] = elapsed
            solutions[index] = solution
    return best, solutions


def run(lengths, chains_per_length, repeats, seed):
    per_length = []
    mismatches = []
    for length in lengths:
        problems = make_problems(length, chains_per_length, seed + length)

        # Legacy configuration: reference inference, reference match binding,
        # no hash consing.  The global caches are cleared first so neither
        # mode free-rides on state warmed up by the other.
        clear_inference_cache()
        clear_intern_table()
        with legacy_inference(), interning_disabled(), legacy_binding():
            legacy_times, legacy_solutions = time_solves(problems, repeats)

        clear_inference_cache()
        clear_intern_table()
        memo_times, memo_solutions = time_solves(problems, repeats)

        for problem, legacy, fast in zip(problems, legacy_solutions, memo_solutions):
            same = (
                legacy.computable == fast.computable
                and math.isclose(
                    float(legacy.optimal_cost),
                    float(fast.optimal_cost),
                    rel_tol=1e-9,
                    abs_tol=1e-9,
                )
                if legacy.computable
                else legacy.computable == fast.computable
            )
            if same and legacy.computable:
                same = legacy.parenthesization() == fast.parenthesization()
            if not same:
                mismatches.append(str(problem))

        legacy_total = sum(legacy_times)
        memo_total = sum(memo_times)
        entry = {
            "length": length,
            "chains": len(problems),
            "repeats": repeats,
            "legacy_total_s": legacy_total,
            "memoized_total_s": memo_total,
            "legacy_mean_ms": statistics.mean(legacy_times) * 1e3,
            "memoized_mean_ms": statistics.mean(memo_times) * 1e3,
            "speedup": legacy_total / memo_total if memo_total > 0 else math.inf,
        }
        per_length.append(entry)
        print(
            f"length {length:2d}: legacy {entry['legacy_mean_ms']:8.3f} ms/chain, "
            f"memoized {entry['memoized_mean_ms']:8.3f} ms/chain, "
            f"speedup {entry['speedup']:5.2f}x"
        )

    legacy_total = sum(entry["legacy_total_s"] for entry in per_length)
    memo_total = sum(entry["memoized_total_s"] for entry in per_length)
    long_entries = [entry for entry in per_length if entry["length"] >= 10]
    long_legacy = sum(entry["legacy_total_s"] for entry in long_entries)
    long_memo = sum(entry["memoized_total_s"] for entry in long_entries)
    return {
        "description": (
            "GMC generation time: memoized inference + hash consing vs legacy "
            "reference path (legacy_inference + legacy_binding + "
            "interning_disabled; always-on identity/token/cost caches remain "
            "active in both modes, so the speedup is a lower bound vs the seed)"
        ),
        "config": {
            "lengths": list(lengths),
            "chains_per_length": chains_per_length,
            "repeats": repeats,
            "seed": seed,
            "metric": "flops",
        },
        "per_length": per_length,
        "overall": {
            "legacy_total_s": legacy_total,
            "memoized_total_s": memo_total,
            "speedup": legacy_total / memo_total if memo_total > 0 else math.inf,
        },
        "length_ge_10": {
            "legacy_total_s": long_legacy,
            "memoized_total_s": long_memo,
            "speedup": long_legacy / long_memo if long_memo > 0 else None,
        },
        "solutions_match": not mismatches,
        "mismatches": mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min-length", type=int, default=3)
    parser.add_argument("--max-length", type=int, default=14)
    parser.add_argument("--chains-per-length", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI-sized run (lengths 3-10, 2 chains each, 1 repeat)",
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit non-zero unless the length>=10 speedup is at least X",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_generation.json",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        lengths = range(3, 11)
        chains_per_length, repeats = 2, 1
    else:
        lengths = range(args.min_length, args.max_length + 1)
        chains_per_length, repeats = args.chains_per_length, args.repeats
    if not lengths or min(lengths) < 2 or chains_per_length < 1 or repeats < 1:
        parser.error(
            "need max-length >= min-length >= 2, chains-per-length >= 1 and repeats >= 1"
        )

    report = run(lengths, chains_per_length, repeats, args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    overall = report["overall"]["speedup"]
    long_speedup = report["length_ge_10"]["speedup"]
    print(f"overall speedup: {overall:.2f}x")
    if long_speedup is not None:
        print(f"length >= 10 speedup: {long_speedup:.2f}x")

    if not report["solutions_match"]:
        print("ERROR: legacy and memoized solutions diverged", file=sys.stderr)
        return 1
    if args.check_speedup is not None:
        reference = long_speedup if long_speedup is not None else overall
        if reference < args.check_speedup:
            print(
                f"ERROR: speedup {reference:.2f}x below required "
                f"{args.check_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

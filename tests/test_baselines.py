"""Tests for the baseline library simulators (paper Section 4)."""

import pytest

from repro.algebra import Inverse, Matrix, Property, Times, Transpose, Vector
from repro.baselines import (
    ARMADILLO_NAIVE,
    ARMADILLO_RECOMMENDED,
    BLAZE_NAIVE,
    EIGEN_NAIVE,
    EIGEN_RECOMMENDED,
    JULIA_NAIVE,
    JULIA_RECOMMENDED,
    MATLAB_NAIVE,
    MATLAB_RECOMMENDED,
    EvaluationStrategy,
    baseline_strategies,
    build_gmc_program,
    strategy_by_name,
)
from repro.runtime import allclose, execute_program, instantiate_expression


def _table2_expression(n=40, m=30):
    a = Matrix("A", n, n, {Property.SPD})
    b = Matrix("B", n, m)
    c = Matrix("C", m, m, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    return Times(Inverse(a), b, Transpose(c))


class TestRegistry:
    def test_nine_baselines(self):
        assert len(baseline_strategies()) == 9

    def test_labels_match_figure8(self):
        labels = [strategy.label for strategy in baseline_strategies()]
        assert labels == ["Jl n", "Jl r", "Arma n", "Arma r", "Eig n", "Eig r", "Bl n", "Mat n", "Mat r"]

    def test_lookup_by_name_and_label(self):
        assert strategy_by_name("julia_naive") is JULIA_NAIVE
        assert strategy_by_name("Arma r") is ARMADILLO_RECOMMENDED

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError):
            strategy_by_name("octave")

    def test_invalid_parenthesization_policy_rejected(self):
        with pytest.raises(ValueError):
            EvaluationStrategy(name="x", label="x", library="X", parenthesization="zigzag")


class TestInverseHandling:
    def test_naive_strategies_invert_explicitly(self):
        expression = _table2_expression()
        for strategy in (JULIA_NAIVE, EIGEN_NAIVE, MATLAB_NAIVE, BLAZE_NAIVE, ARMADILLO_NAIVE):
            program = strategy.build_program(expression)
            assert program.kernel_names[0] in ("GETRI", "POTRI"), strategy.name

    def test_recommended_strategies_solve(self):
        expression = _table2_expression()
        for strategy in (JULIA_RECOMMENDED, EIGEN_RECOMMENDED, MATLAB_RECOMMENDED, ARMADILLO_RECOMMENDED):
            program = strategy.build_program(expression)
            assert "GETRI" not in program.kernel_names
            assert any(name in ("POSV", "GESV", "SYSV", "TRSM") for name in program.kernel_names)

    def test_armadillo_naive_uses_inv_sympd(self):
        program = ARMADILLO_NAIVE.build_program(_table2_expression())
        assert program.kernel_names[0] == "POTRI"

    def test_julia_naive_uses_general_inverse(self):
        program = JULIA_NAIVE.build_program(_table2_expression())
        assert program.kernel_names[0] == "GETRI"

    def test_recommended_spd_solve_uses_posv_when_typed(self):
        expression = _table2_expression()
        assert "POSV" in JULIA_RECOMMENDED.build_program(expression).kernel_names
        assert "POSV" in EIGEN_RECOMMENDED.build_program(expression).kernel_names
        # Armadillo's solve() with solve_opts::fast does not test for SPD.
        assert "POSV" not in ARMADILLO_RECOMMENDED.build_program(expression).kernel_names


class TestPropertyVisibility:
    def test_matlab_products_ignore_structure(self):
        lower = Matrix("L", 20, 20, {Property.LOWER_TRIANGULAR})
        b = Matrix("B", 20, 10)
        program = MATLAB_NAIVE.build_program(Times(lower, b))
        assert program.kernel_names == ("GEMM",)

    def test_julia_products_use_typed_triangular_kernels(self):
        lower = Matrix("L", 20, 20, {Property.LOWER_TRIANGULAR})
        b = Matrix("B", 20, 10)
        program = JULIA_NAIVE.build_program(Times(lower, b))
        assert program.kernel_names == ("TRMM",)

    def test_eigen_naive_ignores_views(self):
        lower = Matrix("L", 20, 20, {Property.LOWER_TRIANGULAR})
        b = Matrix("B", 20, 10)
        assert EIGEN_NAIVE.build_program(Times(lower, b)).kernel_names == ("GEMM",)
        assert EIGEN_RECOMMENDED.build_program(Times(lower, b)).kernel_names == ("TRMM",)

    def test_blaze_adaptors_enable_symmetric_products(self):
        s = Matrix("S", 20, 20, {Property.SYMMETRIC})
        b = Matrix("B", 20, 10)
        assert BLAZE_NAIVE.build_program(Times(s, b)).kernel_names == ("SYMM",)


class TestParenthesization:
    def test_left_to_right_baselines(self):
        a = Matrix("A", 10, 200)
        b = Matrix("B", 200, 10)
        c = Matrix("C", 10, 200)
        expression = Times(a, b, c)
        # Optimal is (A B) C; left-to-right coincides here, so compare flops on
        # a chain where left-to-right is clearly suboptimal instead.
        expression_bad = Times(Transpose(a), Transpose(b), Transpose(c))
        gmc = build_gmc_program(expression_bad).total_flops
        julia = JULIA_NAIVE.build_program(expression_bad).total_flops
        assert julia >= gmc

    def test_blaze_reassociates_matrix_vector_chains(self):
        m1 = Matrix("M1", 50, 40)
        m2 = Matrix("M2", 40, 30)
        v = Vector("v", 30)
        blaze = BLAZE_NAIVE.build_program(Times(m1, m2, v))
        julia = JULIA_NAIVE.build_program(Times(m1, m2, v))
        assert blaze.total_flops < julia.total_flops
        assert set(blaze.kernel_names) == {"GEMV"}

    def test_armadillo_heuristic_handles_long_chains(self):
        matrices = [Matrix(f"M{i}", 30 + 5 * i, 30 + 5 * (i + 1)) for i in range(6)]
        program = ARMADILLO_NAIVE.build_program(Times(*matrices))
        assert len(program.calls) == 5

    def test_strategy_program_flops_never_beat_gmc(self):
        expression = _table2_expression()
        gmc_flops = build_gmc_program(expression).total_flops
        for strategy in baseline_strategies():
            assert strategy.build_program(expression).total_flops >= gmc_flops - 1e-6


class TestNumericalCorrectness:
    @pytest.mark.parametrize("strategy", baseline_strategies(), ids=lambda s: s.name)
    def test_every_baseline_computes_the_right_value(self, strategy):
        expression = _table2_expression()
        env = instantiate_expression(expression, seed=5)
        result = execute_program(strategy.build_program(expression), env)
        assert allclose(expression, env, result, rtol=1e-6, atol=1e-6)

    @pytest.mark.parametrize("strategy", baseline_strategies(), ids=lambda s: s.name)
    def test_baselines_handle_vector_chains(self, strategy):
        m1 = Matrix("M1", 30, 25)
        m2 = Matrix("M2", 25, 20)
        v1 = Vector("v1", 20)
        v2 = Vector("v2", 15)
        expression = Times(m1, m2, v1, Transpose(v2))
        env = instantiate_expression(expression, seed=6)
        result = execute_program(strategy.build_program(expression), env)
        assert allclose(expression, env, result, rtol=1e-6, atol=1e-6)

    @pytest.mark.parametrize("strategy", baseline_strategies(), ids=lambda s: s.name)
    def test_baselines_handle_inverse_transpose(self, strategy):
        lower = Matrix("L", 18, 18, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        b = Matrix("B", 18, 9)
        expression = Times(lower.invT, b)
        env = instantiate_expression(expression, seed=8)
        result = execute_program(strategy.build_program(expression), env)
        assert allclose(expression, env, result, rtol=1e-6, atol=1e-6)

    def test_strategy_label_str(self):
        assert str(JULIA_NAIVE) == "Jl n"

"""Metric behaviour through full GMC solves (satellite coverage).

Exercises the paths a unit test on ``kernel_cost`` alone cannot reach:
vector-metric tuple infinities propagating through uncomputable chains,
caching of pure custom metrics across repeated solves, the
``resolve_metric`` rejection messages, and the ``lower_bound`` pruning hook.
"""

import math

import pytest

from repro.algebra import Matrix, Property, Times
from repro.core import GMCAlgorithm
from repro.cost import (
    AccuracyMetric,
    CustomMetric,
    FlopCount,
    VectorMetric,
    WeightedSumMetric,
    resolve_metric,
)
from repro.kernels.catalog import KernelCatalog, build_default_kernels


@pytest.fixture
def fresh_catalog():
    return KernelCatalog(build_default_kernels(), name="metrics-test")


@pytest.fixture
def no_gesv2_catalog():
    return KernelCatalog(
        build_default_kernels(include_combined_inverse=False), name="no-gesv2"
    )


def _chain(*sizes):
    return Times(
        *[Matrix(f"M{i}", sizes[i], sizes[i + 1]) for i in range(len(sizes) - 1)]
    )


class TestVectorMetricThroughGMC:
    def test_uncomputable_chain_yields_tuple_infinity(self, no_gesv2_catalog):
        metric = VectorMetric([FlopCount(), AccuracyMetric()])
        a = Matrix("A", 8, 8, {Property.NON_SINGULAR})
        b = Matrix("B", 8, 8, {Property.NON_SINGULAR})
        solution = GMCAlgorithm(catalog=no_gesv2_catalog, metric=metric).solve(
            a.I * b.I
        )
        assert not solution.computable
        assert solution.optimal_cost == metric.infinity
        assert isinstance(solution.optimal_cost, tuple)
        assert all(math.isinf(component) for component in solution.optimal_cost)
        assert metric.is_infinite(solution.optimal_cost)

    def test_flops_component_matches_scalar_solve(self, fresh_catalog):
        chain = _chain(30, 35, 15, 5, 10, 20, 25)
        vector = GMCAlgorithm(
            catalog=fresh_catalog, metric=VectorMetric([FlopCount(), AccuracyMetric()])
        ).solve(chain)
        scalar = GMCAlgorithm(catalog=fresh_catalog, metric=FlopCount()).solve(chain)
        assert vector.computable
        assert vector.optimal_cost[0] == pytest.approx(float(scalar.optimal_cost))
        assert vector.parenthesization() == scalar.parenthesization()

    def test_vector_costs_accumulate_componentwise(self, fresh_catalog):
        metric = VectorMetric([FlopCount(), AccuracyMetric()])
        solution = GMCAlgorithm(catalog=fresh_catalog, metric=metric).solve(
            _chain(10, 100, 5, 50)
        )
        totals = [0.0, 0.0]
        for call in solution.kernel_calls():
            totals[0] += call.cost[0]
            totals[1] += call.cost[1]
        assert solution.optimal_cost[0] == pytest.approx(totals[0])
        assert solution.optimal_cost[1] == pytest.approx(totals[1])


class TestCustomMetricThroughGMC:
    def test_cacheable_custom_metric_matches_flops(self, fresh_catalog):
        calls = []

        def flops_cost(kernel, substitution):
            calls.append(kernel.id)
            return kernel.flops(substitution)

        metric = CustomMetric(flops_cost, name="counted-flops", cacheable=True)
        algorithm = GMCAlgorithm(catalog=fresh_catalog, metric=metric)
        chain = _chain(30, 35, 15, 5, 10, 20, 25)
        first = algorithm.solve(chain)
        reference = GMCAlgorithm(catalog=fresh_catalog, metric=FlopCount()).solve(chain)
        assert first.computable
        assert float(first.optimal_cost) == pytest.approx(float(reference.optimal_cost))
        assert first.parenthesization() == reference.parenthesization()
        # A repeated solve reuses the shared kernel-cost memo for every pair
        # binding the (hash-consed) input factors; only pairs over the fresh
        # temporaries of the second solve are re-evaluated.
        evaluations_after_first = len(calls)
        second = algorithm.solve(chain)
        second_delta = len(calls) - evaluations_after_first
        assert 0 < second_delta < evaluations_after_first
        assert float(second.optimal_cost) == pytest.approx(float(first.optimal_cost))

    def test_uncacheable_custom_metric_is_reevaluated(self, fresh_catalog):
        calls = []

        def counting(kernel, substitution):
            calls.append(kernel.id)
            return kernel.flops(substitution)

        metric = CustomMetric(counting, name="stateful")
        assert not metric.cacheable
        algorithm = GMCAlgorithm(catalog=fresh_catalog, metric=metric)
        chain = _chain(10, 100, 5, 50)
        algorithm.solve(chain)
        evaluations_after_first = len(calls)
        algorithm.solve(chain)
        assert len(calls) > evaluations_after_first

    def test_custom_metric_disables_pruning_by_default(self):
        metric = CustomMetric(lambda kernel, substitution: -1.0)
        assert metric.lower_bound(1.0, 2.0) is None
        trusted = CustomMetric(
            lambda kernel, substitution: 1.0, cacheable=True, nonnegative=True
        )
        assert trusted.lower_bound(1.0, 2.0) == pytest.approx(3.0)


class TestLowerBoundHook:
    def test_scalar_bound_is_the_sum(self):
        assert FlopCount().lower_bound(2.0, 3.0) == pytest.approx(5.0)

    def test_vector_bound_is_componentwise(self):
        metric = VectorMetric([FlopCount(), AccuracyMetric()])
        assert metric.lower_bound((1.0, 2.0), (3.0, 4.0)) == (4.0, 6.0)

    def test_negative_weight_disables_the_bound(self):
        metric = WeightedSumMetric([(FlopCount(), 1.0), (AccuracyMetric(), -0.5)])
        assert not metric.nonnegative
        assert metric.lower_bound(1.0, 1.0) is None
        positive = WeightedSumMetric([(FlopCount(), 1.0), (AccuracyMetric(), 0.5)])
        assert positive.nonnegative
        assert positive.lower_bound(1.0, 1.0) == pytest.approx(2.0)


class TestResolveMetricRejections:
    def test_unknown_name_message(self):
        with pytest.raises(ValueError, match="unknown cost metric name: 'bogus'"):
            resolve_metric("bogus")

    def test_non_metric_object_message(self):
        with pytest.raises(TypeError, match="cannot interpret 42 as a cost metric"):
            resolve_metric(42)

    def test_known_names_resolve(self):
        assert resolve_metric("flops").name == "flops"
        assert resolve_metric(None).name == "flops"
        metric = FlopCount()
        assert resolve_metric(metric) is metric

"""Catalog-wide coverage test: every kernel executes and computes correctly.

For every kernel in the default catalog this test constructs concrete
operands that satisfy the kernel's pattern and constraints, executes the
kernel through the NumPy runtime, and compares the result against a direct
reference evaluation of the matched expression.  This guarantees that the
symbolic layer (patterns, constraints, flags) and the numerical layer
(runtime dispatch) agree for the *whole* catalog, not just the kernels the
other tests happen to exercise.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Tuple

import numpy as np
import pytest

from repro.algebra.expression import Expression, Matrix
from repro.algebra.properties import Property
from repro.kernels import default_catalog
from repro.kernels.kernel import Kernel, KernelCall
from repro.matching.patterns import Substitution, match
from repro.runtime.executor import Executor
from repro.runtime.operands import instantiate_matrix
from repro.runtime.reference import evaluate

_N = 7
_M = 5

#: Candidate operands used to satisfy kernel constraints.  The first matching
#: combination (pattern + constraints) is used for the numerical check.
_CANDIDATES: Tuple[Matrix, ...] = (
    Matrix("Xsq", _N, _N, {Property.NON_SINGULAR}),
    Matrix("Xspd", _N, _N, {Property.SPD}),
    Matrix("Xsym", _N, _N, {Property.SYMMETRIC, Property.NON_SINGULAR}),
    Matrix("Xlow", _N, _N, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR}),
    Matrix("Xupp", _N, _N, {Property.UPPER_TRIANGULAR, Property.NON_SINGULAR}),
    Matrix("Xdia", _N, _N, {Property.DIAGONAL, Property.NON_SINGULAR}),
    Matrix("Xrect", _N, _M),
    Matrix("Xrect2", _M, _N),
    Matrix("Xcol", _N, 1),
    Matrix("Xrow", 1, _N),
    Matrix("Xscal", 1, 1),
)


def _rename(operand: Matrix, name: str) -> Matrix:
    return Matrix(name, operand.rows, operand.columns, operand.properties)


def _find_substitution(kernel: Kernel) -> Optional[Tuple[Expression, Substitution]]:
    """Search the candidate pool for operands accepted by the kernel."""
    wildcard_names = kernel.pattern.wildcard_names
    pools: List[Iterable[Matrix]] = [_CANDIDATES for _ in wildcard_names]
    for combination in itertools.product(*pools):
        bindings = {
            name: _rename(operand, name)
            for name, operand in zip(wildcard_names, combination)
        }
        try:
            subject = _instantiate_pattern(kernel.pattern.expression, bindings)
        except Exception:
            continue
        substitution = match(kernel.pattern, subject)
        if substitution is not None:
            return subject, substitution
    return None


def _instantiate_pattern(pattern_expr: Expression, bindings) -> Expression:
    """Replace the wildcards of a pattern by concrete operands."""
    from repro.algebra.operators import Inverse, InverseTranspose, Plus, Times, Transpose
    from repro.matching.patterns import Wildcard

    if isinstance(pattern_expr, Wildcard):
        return bindings[pattern_expr.name]
    if isinstance(pattern_expr, Times):
        return Times(*[_instantiate_pattern(child, bindings) for child in pattern_expr.children])
    if isinstance(pattern_expr, Plus):
        return Plus(*[_instantiate_pattern(child, bindings) for child in pattern_expr.children])
    if isinstance(pattern_expr, Transpose):
        return Transpose(_instantiate_pattern(pattern_expr.operand, bindings))
    if isinstance(pattern_expr, Inverse):
        return Inverse(_instantiate_pattern(pattern_expr.operand, bindings))
    if isinstance(pattern_expr, InverseTranspose):
        return InverseTranspose(_instantiate_pattern(pattern_expr.operand, bindings))
    return pattern_expr


_CATALOG = default_catalog()


@pytest.mark.parametrize("kernel", list(_CATALOG), ids=lambda k: k.id)
def test_every_kernel_matches_some_operands_and_executes_correctly(kernel):
    found = _find_substitution(kernel)
    assert found is not None, f"no candidate operands satisfy kernel {kernel.id}"
    subject, substitution = found

    # The kernel must report a finite, non-negative cost for the match.
    flops = kernel.flops(substitution)
    assert np.isfinite(flops) and flops >= 0.0
    assert kernel.memory_traffic(substitution) > 0.0

    # Execute the kernel call and compare against the reference evaluation.
    rng = np.random.default_rng(17)
    environment = {}
    for operand in substitution.values():
        environment[operand.name] = instantiate_matrix(operand, rng)
    output = Matrix("OUT", subject.rows, subject.columns)
    call = KernelCall(kernel=kernel, substitution=substitution, output=output, expression=subject)
    executor = Executor(environment)
    result = executor.execute_call(call)
    reference = evaluate(subject, environment)
    np.testing.assert_allclose(result, reference.reshape(result.shape), rtol=1e-7, atol=1e-8)


@pytest.mark.parametrize("kernel", list(_CATALOG), ids=lambda k: k.id)
def test_every_kernel_renders_its_code_templates(kernel):
    found = _find_substitution(kernel)
    assert found is not None
    subject, substitution = found
    output = Matrix("OUT", subject.rows, subject.columns)
    call = KernelCall(kernel=kernel, substitution=substitution, output=output, expression=subject)
    julia = call.julia()
    numpy_code = call.numpy()
    assert isinstance(julia, str) and julia
    assert isinstance(numpy_code, str) and numpy_code
    # The rendered code references at least one of the bound operand names.
    assert any(name in julia or name in numpy_code for name in call.operand_names.values())

"""Tests for single-pattern matching: wildcards, substitutions, constraints."""

import pytest

from repro.algebra import Inverse, Matrix, Property, Times, Transpose
from repro.matching import (
    Constraint,
    Pattern,
    Substitution,
    Wildcard,
    match,
    matches,
    property_constraint,
)

A = Matrix("A", 5, 5, {Property.LOWER_TRIANGULAR})
B = Matrix("B", 5, 3)
C = Matrix("C", 3, 3)


class TestWildcard:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Wildcard("")

    def test_unknown_shape(self):
        w = Wildcard("X")
        assert w.rows is None and w.columns is None

    def test_admits_everything_without_predicate(self):
        assert Wildcard("X").admits(A)

    def test_admits_respects_predicate(self):
        leaf_only = Wildcard("X", predicate=lambda e: isinstance(e, Matrix))
        assert leaf_only.admits(A)
        assert not leaf_only.admits(Times(A, B))

    def test_equality_by_name(self):
        assert Wildcard("X") == Wildcard("X")
        assert Wildcard("X") != Wildcard("Y")

    def test_str(self):
        assert str(Wildcard("X")) == "_X"


class TestSubstitution:
    def test_mapping_interface(self):
        s = Substitution({"X": A})
        assert s["X"] is A
        assert "X" in s
        assert len(s) == 1
        assert list(s) == ["X"]

    def test_extended_adds_binding(self):
        s = Substitution().extended("X", A)
        assert s["X"] is A

    def test_extended_conflict_returns_none(self):
        s = Substitution({"X": A})
        assert s.extended("X", B) is None

    def test_extended_same_value_is_allowed(self):
        s = Substitution({"X": A})
        assert s.extended("X", Matrix("A", 5, 5, {Property.LOWER_TRIANGULAR})) is s

    def test_equality_and_hash(self):
        assert Substitution({"X": A}) == Substitution({"X": A})
        assert hash(Substitution({"X": A})) == hash(Substitution({"X": A}))


class TestMatching:
    def test_wildcard_matches_anything(self):
        pattern = Pattern(Wildcard("X"))
        assert matches(pattern, A)
        assert matches(pattern, Times(A, B))

    def test_product_pattern(self):
        pattern = Pattern(Times(Wildcard("X"), Wildcard("Y")))
        substitution = match(pattern, Times(A, B))
        assert substitution["X"] == A
        assert substitution["Y"] == B

    def test_structure_mismatch(self):
        pattern = Pattern(Times(Wildcard("X"), Wildcard("Y")))
        assert match(pattern, Transpose(A)) is None

    def test_arity_mismatch(self):
        pattern = Pattern(Times(Wildcard("X"), Wildcard("Y")))
        assert match(pattern, Times(A, B, C)) is None

    def test_unary_pattern(self):
        pattern = Pattern(Inverse(Wildcard("X")))
        assert match(pattern, Inverse(A))["X"] == A
        assert match(pattern, Transpose(A)) is None

    def test_nested_pattern(self):
        pattern = Pattern(Times(Transpose(Wildcard("X")), Wildcard("Y")))
        other = Matrix("D", 5, 4)
        substitution = match(pattern, Times(Transpose(B), other))
        assert substitution["X"] == B
        assert substitution["Y"] == other

    def test_nonlinear_pattern_requires_equal_bindings(self):
        pattern = Pattern(Times(Transpose(Wildcard("X")), Wildcard("X")))
        assert matches(pattern, Times(Transpose(B), B))
        assert not matches(pattern, Times(Transpose(B), Matrix("B2", 5, 3)))

    def test_concrete_leaf_in_pattern(self):
        pattern = Pattern(Times(A, Wildcard("Y")))
        assert matches(pattern, Times(A, B))
        assert not matches(pattern, Times(Matrix("Z", 5, 5), B))

    def test_constraint_filters_match(self):
        lower_constraint = property_constraint("X", Property.LOWER_TRIANGULAR)
        pattern = Pattern(Times(Wildcard("X"), Wildcard("Y")), constraints=[lower_constraint])
        assert matches(pattern, Times(A, B))
        assert not matches(pattern, Times(B, C))

    def test_wildcard_predicate_blocks_match(self):
        leaf_only = Wildcard("X", predicate=lambda e: isinstance(e, Matrix))
        pattern = Pattern(Times(leaf_only, Wildcard("Y")))
        assert not matches(pattern, Times(Inverse(A), B))

    def test_custom_constraint(self):
        big = Constraint(lambda s: (s["X"].rows or 0) > 10, "big")
        pattern = Pattern(Wildcard("X"), constraints=[big])
        assert not matches(pattern, A)
        assert matches(pattern, Matrix("Big", 20, 20))

    def test_wildcard_names_listed_once(self):
        pattern = Pattern(Times(Transpose(Wildcard("X")), Wildcard("X")))
        assert pattern.wildcard_names == ("X",)

"""Tests for the structured level-2 kernels (TRMV, SYMV, TRSV) and for the
tie-breaking rule that selects them for vector right-hand sides."""

import pytest

from repro.algebra import Inverse, Matrix, Property, Times, Vector
from repro.core import GMCAlgorithm
from repro.kernels import default_catalog


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


class TestCatalogContents:
    def test_families_present(self, catalog):
        families = set(catalog.families)
        assert {"TRMV", "SYMV", "TRSV"} <= families

    def test_variant_counts(self, catalog):
        assert len(catalog.by_family("TRMV")) == 4
        assert len(catalog.by_family("SYMV")) == 1
        assert len(catalog.by_family("TRSV")) == 4

    def test_excluded_from_generic_catalog(self):
        generic = default_catalog(include_specialized=False)
        assert "TRMV" not in generic.families
        assert "TRSV" not in generic.families


class TestMatching:
    def test_trmv_matches_triangular_times_vector(self, catalog):
        lower = Matrix("L", 9, 9, {Property.LOWER_TRIANGULAR})
        v = Vector("v", 9)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(lower, v))}
        assert "TRMV" in names
        assert "TRMM" in names  # the level-3 kernel still matches as well

    def test_symv_matches_symmetric_times_vector(self, catalog):
        s = Matrix("S", 9, 9, {Property.SYMMETRIC})
        v = Vector("v", 9)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(s, v))}
        assert "SYMV" in names

    def test_trsv_matches_triangular_solve_with_vector(self, catalog):
        lower = Matrix("L", 9, 9, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        v = Vector("v", 9)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(Inverse(lower), v))}
        assert "TRSV" in names

    def test_vector_kernels_do_not_match_matrix_right_hand_sides(self, catalog):
        lower = Matrix("L", 9, 9, {Property.LOWER_TRIANGULAR})
        b = Matrix("B", 9, 4)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(lower, b))}
        assert "TRMV" not in names


class TestSelection:
    def test_gmc_prefers_trmv_for_vector_rhs(self):
        lower = Matrix("L", 30, 30, {Property.LOWER_TRIANGULAR})
        v = Vector("v", 30)
        solution = GMCAlgorithm().solve(Times(lower, v))
        assert solution.kernel_sequence() == ["TRMV"]

    def test_gmc_prefers_trsv_for_vector_rhs(self):
        lower = Matrix("L", 30, 30, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        v = Vector("v", 30)
        solution = GMCAlgorithm().solve(Times(Inverse(lower), v))
        assert solution.kernel_sequence() == ["TRSV"]

    def test_gmc_prefers_symv_for_vector_rhs(self):
        s = Matrix("S", 30, 30, {Property.SYMMETRIC})
        v = Vector("v", 30)
        solution = GMCAlgorithm().solve(Times(s, v))
        assert solution.kernel_sequence() == ["SYMV"]

    def test_level2_and_level3_costs_agree(self, catalog):
        """TRMV/TRSV cost exactly what TRMM/TRSM with one column cost."""
        from repro.matching import Substitution

        lower = Matrix("X", 40, 40, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        v = Matrix("Y", 40, 1)
        substitution = Substitution({"X": lower, "Y": v})
        assert catalog.by_id("trmv_lower_n").flops(substitution) == catalog.by_id(
            "trmm_l_lower_nn"
        ).flops(substitution)
        assert catalog.by_id("trsv_lower_i").flops(substitution) == catalog.by_id(
            "trsm_lower_l_in"
        ).flops(substitution)

    def test_matrix_rhs_still_uses_level3_kernels(self):
        lower = Matrix("L", 30, 30, {Property.LOWER_TRIANGULAR})
        b = Matrix("B", 30, 12)
        solution = GMCAlgorithm().solve(Times(lower, b))
        assert solution.kernel_sequence() == ["TRMM"]


class TestExecution:
    def test_triangular_chain_with_vector_executes_correctly(self):
        from repro.runtime import allclose, execute_program, instantiate_expression

        lower = Matrix("L", 25, 25, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        s = Matrix("S", 25, 25, {Property.SYMMETRIC})
        v = Vector("v", 25)
        chain = Times(Inverse(lower), s, v)
        program = GMCAlgorithm().generate(chain)
        environment = instantiate_expression(chain, seed=9)
        result = execute_program(program, environment)
        assert allclose(chain, environment, result, rtol=1e-7, atol=1e-7)
        assert set(program.kernel_names) <= {"TRSV", "SYMV", "TRMV", "GEMV"}

"""Tests for the end-to-end compiler front-end (DSL -> GMC -> code)."""

import subprocess
import sys

import pytest

from repro.frontend import CompilationResult, compile_source
from repro.kernels import default_catalog

SOURCE = """
Matrix A (200, 200) <SPD>
Matrix B (200, 100) <>
Matrix C (100, 100) <LowerTriangular, NonSingular>
Vector y (100)

X := A^-1 * B * C^T
z := A^-1 * B * y
"""


class TestCompileSource:
    def test_returns_compilation_result(self):
        result = compile_source(SOURCE)
        assert isinstance(result, CompilationResult)
        assert len(result) == 2

    def test_operands_are_exposed(self):
        result = compile_source(SOURCE)
        assert set(result.operands) == {"A", "B", "C", "y"}

    def test_assignment_lookup(self):
        result = compile_source(SOURCE)
        compiled = result.assignment("X")
        assert compiled.target == "X"
        assert compiled.kernel_sequence == ["TRMM", "POSV"]

    def test_unknown_assignment_raises(self):
        with pytest.raises(KeyError):
            compile_source(SOURCE).assignment("Q")

    def test_vector_assignment_uses_matrix_vector_kernels(self):
        result = compile_source(SOURCE)
        kernels = result.assignment("z").kernel_sequence
        assert kernels[-1] == "POSV"
        assert "GEMV" in kernels

    def test_total_flops_is_sum_of_assignments(self):
        result = compile_source(SOURCE)
        assert result.total_flops == pytest.approx(
            sum(compiled.flops for compiled in result)
        )

    def test_julia_and_numpy_emission(self):
        result = compile_source(SOURCE)
        julia = result.julia()
        numpy_code = result.numpy()
        assert "function compute_X(" in julia
        assert "def compute_x(" in numpy_code
        assert "posv!" in julia
        assert "cholesky_solve" in numpy_code

    def test_report_mentions_operands_and_costs(self):
        report = compile_source(SOURCE).report()
        assert "operand A" in report
        assert "total cost" in report
        assert "TRMM -> POSV" in report

    def test_metric_selection(self):
        flops_result = compile_source(SOURCE, metric="flops")
        time_result = compile_source(SOURCE, metric="time")
        assert flops_result.assignment("X").flops <= time_result.assignment("X").flops + 1e-6

    def test_custom_catalog(self):
        generic = compile_source(SOURCE, catalog=default_catalog(include_specialized=False))
        assert "POSV" not in generic.assignment("X").kernel_sequence

    def test_generated_numpy_code_executes(self):
        import numpy as np

        from repro.runtime import evaluate, instantiate_expression

        result = compile_source(SOURCE)
        compiled = result.assignment("X")
        namespace = {}
        exec(compile(compiled.numpy(), "<generated>", "exec"), namespace)
        import inspect

        function = namespace["compute_x"]
        environment = instantiate_expression(compiled.expression, seed=5)
        arguments = [environment[name] for name in inspect.signature(function).parameters]
        np.testing.assert_allclose(
            function(*arguments),
            evaluate(compiled.expression, environment),
            rtol=1e-7,
            atol=1e-7,
        )


class TestCommandLine:
    def _run(self, *arguments, stdin=SOURCE):
        return subprocess.run(
            [sys.executable, "-m", "repro.frontend", *arguments],
            input=stdin,
            capture_output=True,
            text=True,
            check=False,
        )

    def test_report_output(self):
        completed = self._run()
        assert completed.returncode == 0
        assert "TRMM -> POSV" in completed.stdout

    def test_julia_emission(self):
        completed = self._run("--emit", "julia")
        assert completed.returncode == 0
        assert "posv!" in completed.stdout

    def test_numpy_emission(self):
        completed = self._run("--emit", "numpy")
        assert completed.returncode == 0
        assert "cholesky_solve" in completed.stdout

    def test_file_input(self, tmp_path):
        path = tmp_path / "problem.chain"
        path.write_text(SOURCE, encoding="utf-8")
        completed = self._run(str(path), "--metric", "time")
        assert completed.returncode == 0
        assert "total cost" in completed.stdout


class TestCommandLineSolverFlags:
    """CLI parity with the HTTP service: --solver/--no-prune/--no-match-cache
    are expressible from the command line and change nothing about the
    chosen kernel sequences (the options only steer *how* the optimum is
    found)."""

    def _report(self, *arguments, tmp_path):
        from repro.frontend import main

        path = tmp_path / "problem.chain"
        path.write_text(SOURCE, encoding="utf-8")
        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = main([str(path), *arguments])
        assert status == 0
        return buffer.getvalue()

    def test_topdown_solver_is_selectable(self, tmp_path):
        report = self._report("--solver", "topdown", tmp_path=tmp_path)
        assert "TRMM -> POSV" in report

    def test_no_prune_flag(self, tmp_path):
        default = self._report(tmp_path=tmp_path)
        unpruned = self._report("--no-prune", tmp_path=tmp_path)
        assert "TRMM -> POSV" in unpruned
        assert [l for l in default.splitlines() if "kernels:" in l] == [
            l for l in unpruned.splitlines() if "kernels:" in l
        ]

    def test_no_match_cache_flag(self, tmp_path):
        report = self._report(
            "--solver", "topdown", "--no-prune", "--no-match-cache", tmp_path=tmp_path
        )
        assert "TRMM -> POSV" in report

    def test_emit_flag_uses_the_registry(self, tmp_path):
        julia = self._report("--emit", "julia", "--solver", "topdown", tmp_path=tmp_path)
        assert "function compute_X(" in julia

    def test_pipeline_flags_are_rejected_in_serve_mode(self, capsys):
        """Service requests carry their own options; server-wide pipeline
        flags would be silently overridden, so --serve refuses them."""
        from repro.frontend import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--serve", "--solver", "topdown", "--no-prune", "--port", "0"])
        assert excinfo.value.code == 2
        assert "--solver" in capsys.readouterr().err

    def test_cli_flags_match_service_options(self, tmp_path):
        """The flag combination and the equivalent CompileRequest produce the
        same kernel sequences (CLI/service parity, both shapes of the same
        CompileOptions)."""
        from repro.service.api import CompileRequest, execute_request
        from repro import CompileOptions

        report = self._report(
            "--solver", "topdown", "--no-prune", "--no-match-cache", tmp_path=tmp_path
        )
        cli_kernels = [
            line.split(":", 1)[1].strip().split(" -> ")
            for line in report.splitlines()
            if line.strip().startswith("kernels:")
        ]
        response = execute_request(
            CompileRequest(
                source=SOURCE,
                options=CompileOptions(
                    solver="topdown", prune=False, match_cache=False
                ),
            )
        )
        assert response.ok
        assert cli_kernels == [list(r.kernels) for r in response.assignments]

"""Tests for the compilation service (API, executors, pool, HTTP)."""

from __future__ import annotations

import json
import multiprocessing
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.frontend import compile_source
from repro.service import (
    CompileRequest,
    CompileResponse,
    InProcessExecutor,
    RequestError,
    WorkerPool,
    affinity_key,
    create_executor,
    execute_request,
)
from repro.service.http import start_server

#: Template for structurally similar chains: same shapes/properties/structure,
#: different operand names per tag (so identity/equality caches miss but the
#: signature-keyed match cache hits).
TEMPLATE = """
Matrix A{t} (200, 200) <spd>
Matrix B{t} (200, 100) <>
Matrix C{t} (100, 100) <lower_triangular, non_singular>
X := A{t}^-1 * B{t} * C{t}^T
"""


def similar_sources(count: int, prefix: str = "S"):
    return [TEMPLATE.replace("{t}", f"{prefix}{index}") for index in range(count)]


# ---------------------------------------------------------------------------
# Request/response model
# ---------------------------------------------------------------------------

class TestApi:
    def test_request_roundtrips_through_dict(self):
        request = CompileRequest(
            source="Matrix A (4, 4) <>\nX := A * A\n",
            metric="flops",
            solver="topdown",
            emit=("julia",),
            prune=False,
            use_match_cache=False,
        )
        clone = CompileRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert clone == request

    def test_structured_spec_equals_source(self):
        structured = CompileRequest(
            operands={
                "A": {"rows": 200, "columns": 200, "properties": ["spd"]},
                "B": {"rows": 200, "columns": 100},
            },
            assignments=[{"target": "X", "expression": "A^-1 * B"}],
        )
        textual = CompileRequest(
            source="Matrix A (200, 200) <spd>\nMatrix B (200, 100) <>\nX := A^-1 * B\n"
        )
        left = execute_request(structured)
        right = execute_request(textual)
        assert left.ok and right.ok
        assert left.kernel_sequences == right.kernel_sequences == {"X": ["POSV"]}

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # neither source nor spec
            {"source": "X := A\n", "metric": "nonsense"},
            {"source": "X := A\n", "solver": "nonsense"},
            {"source": "X := A\n", "emit": ["fortran"]},
            {"source": "X := A\n", "bogus_field": 1},
        ],
    )
    def test_malformed_requests_raise(self, payload):
        with pytest.raises(RequestError):
            CompileRequest.from_dict(payload)

    def test_execution_errors_fold_into_response(self):
        response = execute_request(CompileRequest(source="this is not DSL"))
        assert not response.ok
        assert response.error
        assert response.assignments == []

    def test_response_roundtrips_through_dict(self):
        response = execute_request(CompileRequest(source=similar_sources(1)[0]))
        clone = CompileResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert clone.kernel_sequences == response.kernel_sequences
        assert clone.ok and clone.total_flops == response.total_flops

    def test_affinity_key_is_name_abstracted(self):
        a, b = similar_sources(2)
        assert affinity_key(CompileRequest(source=a)) == affinity_key(
            CompileRequest(source=b)
        )
        different = CompileRequest(
            source="Matrix A (7, 7) <>\nX := A * A * A\n"
        )
        assert affinity_key(CompileRequest(source=a)) != affinity_key(different)


# ---------------------------------------------------------------------------
# In-process executor (the tier-1 path: no processes are spawned)
# ---------------------------------------------------------------------------

class TestInProcessExecutor:
    def test_create_executor_fallback_spawns_nothing(self):
        before = multiprocessing.active_children()
        executor = create_executor(in_process=True)
        assert isinstance(executor, InProcessExecutor)
        assert executor.workers == 0
        executor.submit(CompileRequest(source=similar_sources(1)[0]))
        assert multiprocessing.active_children() == before
        executor.close()
        assert isinstance(create_executor(workers=0), InProcessExecutor)

    def test_batch_matches_compile_source(self):
        sources = similar_sources(20, prefix="InP")
        with create_executor(in_process=True) as executor:
            responses = executor.compile_batch(
                [CompileRequest(source=source) for source in sources]
            )
        assert all(response.ok for response in responses)
        for source, response in zip(sources, responses):
            direct = compile_source(source)
            assert response.assignment("X").kernels == direct.assignment(
                "X"
            ).kernel_sequence
            assert response.assignment("X").flops == pytest.approx(
                direct.assignment("X").flops
            )

    def test_emitted_code_matches_frontend(self):
        import re

        def normalized(code: str) -> str:
            # Temporary names draw from a process-global counter, so two
            # compilations of the same source differ only in T<n> numbering.
            return re.sub(r"\bT\d+\b", "T#", code)

        source = similar_sources(1, prefix="Code")[0]
        with create_executor(in_process=True) as executor:
            response = executor.submit(
                CompileRequest(source=source, emit=("julia", "numpy"))
            )
        direct = compile_source(source)
        assert normalized(response.assignment("X").code["julia"]) == normalized(
            direct.assignment("X").julia()
        )
        assert normalized(response.assignment("X").code["numpy"]) == normalized(
            direct.assignment("X").numpy()
        )

    def test_stats_reflect_real_hits_and_reset(self):
        with create_executor(in_process=True) as executor:
            executor.reset_stats()
            sources = similar_sources(6, prefix="Stats")
            executor.compile_batch([CompileRequest(source=s) for s in sources])
            stats = executor.stats()
            assert stats["mode"] == "in-process"
            assert stats["pool"]["requests"] == 6
            match = stats["caches"]["match_cache"]
            # Request 2..6 are structurally identical to request 1, so the
            # signature-keyed cache must hit on the warm majority.
            assert match["hits"] > 0
            assert match["hit_rate"] > 0.5
            for layer in ("match_cache", "interner", "inference", "kernel_cost"):
                entry = stats["caches"][layer]
                for key in ("hits", "misses", "hit_rate", "size", "evictions"):
                    assert key in entry, (layer, key)
            executor.reset_stats()
            after = executor.stats()
            assert after["pool"]["requests"] == 0
            assert after["caches"]["match_cache"]["hits"] == 0

    def test_bad_request_is_error_response(self):
        with create_executor(in_process=True) as executor:
            response = executor.submit(CompileRequest(source="garbage ::= input"))
        assert not response.ok
        assert "Error" in (response.error or "")

    def test_concurrent_requests_stay_consistent(self):
        """Concurrent submits through the shared caches corrupt nothing."""
        sources = similar_sources(8, prefix="Thr") + [
            "Matrix D (60, 60) <diagonal, non_singular>\n"
            "Matrix E (60, 30) <>\nY := D^-1 * E\n"
        ] * 4
        expected = {
            source: compile_source(source).assignments[0].kernel_sequence
            for source in set(sources)
        }
        with create_executor(in_process=True) as executor:
            with ThreadPoolExecutor(max_workers=6) as threads:
                responses = list(
                    threads.map(
                        lambda source: executor.submit(CompileRequest(source=source)),
                        sources * 3,
                    )
                )
        for source, response in zip(sources * 3, responses):
            assert response.ok, response.error
            assert response.assignments[0].kernels == expected[source]


# ---------------------------------------------------------------------------
# Worker pool (persistent warm-cache processes)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="class")
def pool():
    pool = WorkerPool(workers=2, request_timeout=120.0)
    yield pool
    pool.close()


class TestWorkerPool:
    def test_batch_matches_compile_source(self, pool):
        sources = similar_sources(10, prefix="Pool")
        responses = pool.compile_batch(
            [CompileRequest(source=source) for source in sources]
        )
        assert all(response.ok for response in responses)
        direct = compile_source(sources[0])
        for response in responses:
            assert response.assignment("X").kernels == direct.assignment(
                "X"
            ).kernel_sequence

    def test_affinity_routes_similar_requests_to_one_worker(self, pool):
        requests = [CompileRequest(source=s) for s in similar_sources(5, prefix="Aff")]
        workers = {pool.worker_for(request) for request in requests}
        assert len(workers) == 1
        responses = pool.compile_batch(requests)
        assert {response.worker for response in responses} == workers

    def test_pooled_stats_reflect_hits(self, pool):
        pool.reset_stats()
        sources = similar_sources(8, prefix="PStats")
        pool.compile_batch([CompileRequest(source=source) for source in sources])
        stats = pool.stats()
        assert stats["mode"] == "pool"
        assert stats["workers"] == 2
        assert stats["pool"]["requests"] == 8
        # The plan cache answers renamed (signature-equal) requests above
        # the solvers, so warm traffic shows up there -- the match cache
        # underneath only ever sees cold solves (possibly none, when the
        # pool is already warm from earlier requests in this module).
        assert stats["caches"]["plan_cache"]["hits"] >= 7
        assert stats["caches"]["plan_cache"]["hit_rate"] > 0.5
        assert len(stats["per_worker"]) == 2

    def test_worker_crash_restarts_and_recovers(self, pool):
        requests = [
            CompileRequest(source=s) for s in similar_sources(4, prefix="Crash")
        ]
        target = pool.worker_for(requests[0])
        restarts_before = pool.restarts
        pool.crash_worker(target)
        assert not pool._procs[target].is_alive()
        responses = pool.compile_batch(requests, timeout=60.0)
        assert all(response.ok for response in responses)
        assert pool.restarts == restarts_before + 1
        assert pool.ping()["status"] == "ok"

    def test_ping_reports_all_workers(self, pool):
        health = pool.ping()
        assert health["alive"] == health["workers"] == 2


# ---------------------------------------------------------------------------
# HTTP front-end
# ---------------------------------------------------------------------------

@pytest.fixture(scope="class")
def http_service():
    executor = InProcessExecutor()
    server, thread = start_server(executor, port=0)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base
    server.shutdown()
    thread.join(timeout=5.0)
    executor.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


class TestHTTP:
    def test_compile_endpoint_matches_direct(self, http_service):
        source = similar_sources(1, prefix="Http")[0]
        status, body = _post(f"{http_service}/compile", {"source": source})
        assert status == 200 and body["ok"]
        direct = compile_source(source)
        assert body["assignments"][0]["kernels"] == direct.assignment(
            "X"
        ).kernel_sequence

    def test_batch_endpoint(self, http_service):
        sources = similar_sources(5, prefix="HBatch")
        status, body = _post(
            f"{http_service}/batch",
            {"requests": [{"source": source} for source in sources]},
        )
        assert status == 200
        assert body["count"] == 5 and body["failed"] == 0
        kernels = {
            tuple(response["assignments"][0]["kernels"])
            for response in body["responses"]
        }
        assert len(kernels) == 1

    def test_stats_reflect_real_hit_counts(self, http_service):
        _, before = _get(f"{http_service}/stats")
        sources = similar_sources(4, prefix="HStats")
        _post(
            f"{http_service}/batch",
            {"requests": [{"source": source} for source in sources]},
        )
        _, after = _get(f"{http_service}/stats")
        # Warm signature-equal traffic is answered by the plan cache (the
        # layer above the solvers); the match cache only ever sees cold
        # solves underneath it.
        layer_before = before["caches"]["plan_cache"]
        layer_after = after["caches"]["plan_cache"]
        assert layer_after["hits"] > layer_before["hits"]
        new_lookups = (
            layer_after["hits"]
            + layer_after["misses"]
            - layer_before["hits"]
            - layer_before["misses"]
        )
        new_hits = layer_after["hits"] - layer_before["hits"]
        assert new_lookups > 0
        assert new_hits / new_lookups > 0.5

    def test_healthz(self, http_service):
        status, body = _get(f"{http_service}/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_malformed_json_is_400(self, http_service):
        request = urllib.request.Request(
            f"{http_service}/compile",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_field_is_400(self, http_service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{http_service}/compile", {"sauce": "typo"})
        assert excinfo.value.code == 400

    def test_compile_error_is_400_with_error_body(self, http_service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{http_service}/compile", {"source": "garbage ::= input"})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["ok"] is False and body["error"]

    def test_unknown_path_is_404(self, http_service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{http_service}/nope")
        assert excinfo.value.code == 404


# ---------------------------------------------------------------------------
# CLI (--serve boots a working server)
# ---------------------------------------------------------------------------

class TestServeCLI:
    def test_serve_flag_boots_http_server(self):
        import re
        import subprocess
        import sys
        import time

        process = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro.frontend",
                "--serve",
                "--in-process",
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no address in banner: {banner!r}"
            base = f"http://127.0.0.1:{match.group(1)}"
            deadline = time.time() + 30
            while True:
                try:
                    status, body = _get(f"{base}/healthz")
                    break
                except OSError:
                    assert time.time() < deadline, "server never became healthy"
                    time.sleep(0.2)
            assert status == 200 and body["status"] == "ok"
            status, body = _post(
                f"{base}/compile", {"source": similar_sources(1, "Cli")[0]}
            )
            assert status == 200 and body["ok"]
        finally:
            process.terminate()
            process.wait(timeout=10)

"""Tests for the NumPy kernel implementations (the execution backend)."""

import numpy as np
import pytest

from repro.runtime import kernels_numpy as backend


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def _spd(rng, n):
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


def _lower(rng, n):
    a = np.tril(rng.standard_normal((n, n)))
    np.fill_diagonal(a, np.abs(np.diag(a)) + 1.0)
    return a


class TestProducts:
    def test_product(self, rng):
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((3, 5))
        np.testing.assert_allclose(backend.product(a, b), a @ b)

    def test_product_promotes_1d_vectors(self, rng):
        a = rng.standard_normal((4, 3))
        v = rng.standard_normal(3)
        assert backend.product(a, v).shape == (4, 1)

    def test_syrk_transposed(self, rng):
        a = rng.standard_normal((6, 4))
        np.testing.assert_allclose(backend.syrk(a, trans="T"), a.T @ a)

    def test_syrk_untransposed(self, rng):
        a = rng.standard_normal((6, 4))
        np.testing.assert_allclose(backend.syrk(a, trans="N"), a @ a.T)


class TestTriangularSolves:
    def test_left_lower(self, rng):
        lower = _lower(rng, 5)
        b = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            backend.solve_triangular(lower, b), np.linalg.solve(lower, b)
        )

    def test_left_upper(self, rng):
        upper = _lower(rng, 5).T
        b = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            backend.solve_triangular(upper, b), np.linalg.solve(upper, b)
        )

    def test_left_transposed(self, rng):
        lower = _lower(rng, 5)
        b = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            backend.solve_triangular(lower, b, transposed=True),
            np.linalg.solve(lower.T, b),
        )

    def test_right(self, rng):
        lower = _lower(rng, 4)
        b = rng.standard_normal((3, 4))
        np.testing.assert_allclose(
            backend.solve_triangular(lower, b, side="R"), b @ np.linalg.inv(lower)
        )

    def test_right_transposed(self, rng):
        lower = _lower(rng, 4)
        b = rng.standard_normal((3, 4))
        np.testing.assert_allclose(
            backend.solve_triangular(lower, b, transposed=True, side="R"),
            b @ np.linalg.inv(lower.T),
        )


class TestFactorizationSolves:
    def test_cholesky_left(self, rng):
        spd = _spd(rng, 6)
        b = rng.standard_normal((6, 2))
        np.testing.assert_allclose(
            backend.cholesky_solve(spd, b), np.linalg.solve(spd, b), rtol=1e-9
        )

    def test_cholesky_right(self, rng):
        spd = _spd(rng, 6)
        b = rng.standard_normal((2, 6))
        np.testing.assert_allclose(
            backend.cholesky_solve(spd, b, side="R"), b @ np.linalg.inv(spd), rtol=1e-8
        )

    def test_symmetric_solve(self, rng):
        sym = rng.standard_normal((6, 6))
        sym = (sym + sym.T) / 2 + 6 * np.eye(6)
        b = rng.standard_normal((6, 3))
        np.testing.assert_allclose(
            backend.symmetric_solve(sym, b), np.linalg.solve(sym, b), rtol=1e-9
        )

    def test_lu_left(self, rng):
        a = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        b = rng.standard_normal((6, 3))
        np.testing.assert_allclose(backend.lu_solve(a, b), np.linalg.solve(a, b))

    def test_lu_left_transposed(self, rng):
        a = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        b = rng.standard_normal((6, 3))
        np.testing.assert_allclose(
            backend.lu_solve(a, b, transposed=True), np.linalg.solve(a.T, b)
        )

    def test_lu_right(self, rng):
        a = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        b = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            backend.lu_solve(a, b, side="R"), b @ np.linalg.inv(a), rtol=1e-9
        )

    def test_lu_right_transposed(self, rng):
        a = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        b = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            backend.lu_solve(a, b, transposed=True, side="R"),
            b @ np.linalg.inv(a.T),
            rtol=1e-9,
        )

    def test_diagonal_solve_left(self, rng):
        diag = np.diag(rng.uniform(1.0, 2.0, size=5))
        b = rng.standard_normal((5, 3))
        np.testing.assert_allclose(backend.diagonal_solve(diag, b), np.linalg.solve(diag, b))

    def test_diagonal_solve_right(self, rng):
        diag = np.diag(rng.uniform(1.0, 2.0, size=5))
        b = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            backend.diagonal_solve(diag, b, side="R"), b @ np.linalg.inv(diag)
        )


class TestInversion:
    def test_invert(self, rng):
        a = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        np.testing.assert_allclose(backend.invert(a), np.linalg.inv(a))

    def test_invert_spd(self, rng):
        spd = _spd(rng, 5)
        np.testing.assert_allclose(backend.invert_spd(spd), np.linalg.inv(spd), rtol=1e-8)

    def test_invert_triangular(self, rng):
        lower = _lower(rng, 5)
        np.testing.assert_allclose(
            backend.invert_triangular(lower), np.linalg.inv(lower), rtol=1e-9, atol=1e-12
        )

    def test_invert_diagonal(self, rng):
        diag = np.diag(rng.uniform(1.0, 3.0, size=5))
        np.testing.assert_allclose(backend.invert_diagonal(diag), np.linalg.inv(diag))

    def test_transpose(self, rng):
        a = rng.standard_normal((4, 6))
        np.testing.assert_allclose(backend.transpose(a), a.T)
        assert backend.transpose(a).flags["OWNDATA"]

"""Tests for the textual DSL front-end (grammars of Fig. 1 and Fig. 2)."""

import pytest

from repro.algebra import (
    Inverse,
    InverseTranspose,
    Matrix,
    ParseError,
    Plus,
    Property,
    Times,
    Transpose,
    parse_expression,
    parse_program,
)


PROGRAM = """
# Operand definitions (Fig. 2)
Matrix A (100, 100) <SPD>
Matrix B (100, 50) <>
Matrix C (50, 50) <LowerTriangular>
Vector x (50)

# Assignment (Fig. 1)
X := A^-1 * B * C^T
y := A^-1 * B * x
"""


class TestDefinitions:
    def test_operands_are_parsed(self):
        program = parse_program(PROGRAM)
        assert set(program.operands) == {"A", "B", "C", "x"}

    def test_matrix_shape(self):
        program = parse_program(PROGRAM)
        assert program.operands["B"].shape == (100, 50)

    def test_properties_attached(self):
        program = parse_program(PROGRAM)
        assert Property.SPD in program.operands["A"].properties
        assert Property.LOWER_TRIANGULAR in program.operands["C"].properties

    def test_vector_definition(self):
        program = parse_program(PROGRAM)
        x = program.operands["x"]
        assert x.shape == (50, 1)

    def test_square_shorthand(self):
        program = parse_program("Matrix A (30) <Diagonal>")
        assert program.operands["A"].shape == (30, 30)

    def test_duplicate_definition_raises(self):
        with pytest.raises(ParseError):
            parse_program("Matrix A (3, 3)\nMatrix A (4, 4)")

    def test_unknown_property_raises(self):
        with pytest.raises(ParseError):
            parse_program("Matrix A (3, 3) <Sparse>")

    def test_general_placeholder_property_is_ignored(self):
        program = parse_program("Matrix A (3, 4) <General>")
        assert Property.SPD not in program.operands["A"].properties


class TestExpressions:
    def test_assignment_structure(self):
        program = parse_program(PROGRAM)
        assert len(program.assignments) == 2
        target, expr = program.assignments[0]
        assert target == "X"
        assert isinstance(expr, Times)

    def test_inverse_and_transpose_operators(self):
        program = parse_program(PROGRAM)
        expr = program.expression("X")
        factors = expr.children
        assert isinstance(factors[0], Inverse)
        assert isinstance(factors[2], Transpose)

    def test_expression_lookup_by_name(self):
        program = parse_program(PROGRAM)
        assert program.expression("y").shape == (100, 1)

    def test_expression_single_assignment(self):
        program = parse_program("Matrix A (5, 5)\nMatrix B (5, 5)\nX := A * B")
        assert isinstance(program.expression(), Times)

    def test_expression_requires_unique_assignment_when_unnamed(self):
        program = parse_program(PROGRAM)
        with pytest.raises(ParseError):
            program.expression()

    def test_prime_transpose_syntax(self):
        operands = {"A": Matrix("A", 4, 5)}
        expr = parse_expression("A'", operands)
        assert expr == Transpose(operands["A"])

    def test_inverse_transpose_operator(self):
        operands = {"A": Matrix("A", 4, 4)}
        expr = parse_expression("A^-T", operands)
        assert expr == InverseTranspose(operands["A"])

    def test_function_style_inv_and_trans(self):
        operands = {"A": Matrix("A", 4, 4), "B": Matrix("B", 4, 4)}
        assert parse_expression("inv(A)", operands) == Inverse(operands["A"])
        assert parse_expression("trans(B)", operands) == Transpose(operands["B"])

    def test_plus(self):
        operands = {"A": Matrix("A", 4, 4), "B": Matrix("B", 4, 4)}
        expr = parse_expression("A + B", operands)
        assert isinstance(expr, Plus)

    def test_parentheses(self):
        operands = {"A": Matrix("A", 4, 4), "B": Matrix("B", 4, 4), "C": Matrix("C", 4, 4)}
        expr = parse_expression("(A + B) * C", operands)
        assert isinstance(expr, Times)
        assert isinstance(expr.children[0], Plus)

    def test_implicit_multiplication(self):
        operands = {"A": Matrix("A", 4, 4), "B": Matrix("B", 4, 4)}
        assert parse_expression("A B", operands) == Times(operands["A"], operands["B"])

    def test_undefined_operand_raises(self):
        with pytest.raises(ParseError):
            parse_expression("A * Z", {"A": Matrix("A", 4, 4)})

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_expression("A * B )", {"A": Matrix("A", 4, 4), "B": Matrix("B", 4, 4)})

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            parse_expression("A $ B", {"A": Matrix("A", 4, 4), "B": Matrix("B", 4, 4)})

    def test_shape_errors_surface_from_construction(self):
        operands = {"A": Matrix("A", 4, 5), "B": Matrix("B", 4, 5)}
        with pytest.raises(Exception):
            parse_expression("A * B", operands)


class TestAssignmentReferences:
    """Multi-assignment programs: later lines may reference earlier targets."""

    SOURCE = """
Matrix A (10, 20) <>
Matrix B (20, 20) <SPD>
G := A * B * A^T
J := G^-1 * A
"""

    def test_reference_leaf_is_emitted(self):
        from repro.algebra import Reference

        program = parse_program(self.SOURCE)
        _, expr = program.assignments[1]
        inverse = expr.children[0]
        assert isinstance(inverse, Inverse)
        assert isinstance(inverse.operand, Reference)
        assert inverse.operand.name == "G"

    def test_reference_takes_shape_from_defining_expression(self):
        program = parse_program(self.SOURCE)
        _, expr = program.assignments[1]
        reference = expr.children[0].operand
        assert reference.shape == (10, 10)
        assert reference.origin == program.expression("G")

    def test_reference_is_distinct_from_plain_matrix(self):
        from repro.algebra import Reference

        program = parse_program(self.SOURCE)
        reference = program.assignments[1][1].children[0].operand
        assert reference != Matrix("G", 10, 10)
        assert reference == Reference("G", 10, 10, origin=reference.origin)

    def test_use_before_definition_raises(self):
        with pytest.raises(ParseError, match="undefined operand 'J'"):
            parse_program(
                "Matrix A (5, 5) <>\n"
                "X := J * A\n"
                "J := A * A\n"
            )

    def test_self_reference_raises(self):
        with pytest.raises(ParseError, match="undefined operand 'X'"):
            parse_program("Matrix A (5, 5) <>\nX := X * A")

    def test_target_colliding_with_operand_raises(self):
        with pytest.raises(ParseError, match="collides with an operand"):
            parse_program("Matrix A (5, 5) <>\nA := A * A")

    def test_reassignment_latest_definition_wins(self):
        program = parse_program(
            "Matrix A (5, 5) <>\n"
            "T := A * A\n"
            "T := A * A * A\n"
            "X := T * A\n"
        )
        reference = program.assignments[2][1].children[0]
        assert reference.origin == program.assignments[1][1]
        assert len(reference.origin.children) == 3


class TestProgramRoundTrip:
    def test_parsed_expression_is_solvable(self):
        from repro.core import solve_chain

        program = parse_program(PROGRAM)
        solution = solve_chain(program.expression("X"))
        assert solution.computable
        assert solution.total_flops > 0

    def test_comment_only_lines_are_ignored(self):
        program = parse_program("# nothing here\n\nMatrix A (3, 3)")
        assert "A" in program.operands

    def test_malformed_assignment_raises(self):
        with pytest.raises(ParseError):
            parse_program("Matrix A (3, 3)\nX = A")

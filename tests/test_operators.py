"""Tests for the compound expression nodes: Times, Plus, unary operators."""

import pytest

from repro.algebra import (
    Inverse,
    InverseTranspose,
    Matrix,
    Plus,
    ShapeError,
    Times,
    Transpose,
    Vector,
)

A = Matrix("A", 3, 4)
B = Matrix("B", 4, 5)
C = Matrix("C", 5, 6)
S = Matrix("S", 4, 4)


class TestTimes:
    def test_shape_of_product(self):
        assert Times(A, B).shape == (3, 5)

    def test_flattening_of_nested_products(self):
        nested_left = Times(Times(A, B), C)
        nested_right = Times(A, Times(B, C))
        assert nested_left == nested_right
        assert len(nested_left.children) == 3

    def test_operator_overloading(self):
        assert (A * B) == Times(A, B)
        assert (A @ B) == Times(A, B)

    def test_nonconforming_product_raises(self):
        with pytest.raises(ShapeError):
            Times(A, C)

    def test_requires_two_operands(self):
        with pytest.raises(ValueError):
            Times(A)

    def test_rejects_non_expression_operands(self):
        with pytest.raises(TypeError):
            Times(A, 3)

    def test_str_representation(self):
        assert str(Times(A, B)) == "A * B"

    def test_children_are_preserved_in_order(self):
        product = Times(A, B, C)
        assert product.children == (A, B, C)

    def test_product_with_vector(self):
        v = Vector("v", 5)
        assert Times(B, v).shape == (4, 1)

    def test_preorder_traversal(self):
        product = Times(A, B)
        nodes = list(product.preorder())
        assert nodes[0] is product
        assert A in nodes and B in nodes

    def test_depth_and_size(self):
        product = Times(A, B, C)
        assert product.size == 4
        assert product.depth == 2

    def test_immutability(self):
        product = Times(A, B)
        with pytest.raises(AttributeError):
            product.children = ()


class TestPlus:
    def test_shape(self):
        assert Plus(S, S).shape == (4, 4)

    def test_flattening(self):
        assert Plus(Plus(S, S), S) == Plus(S, S, S)

    def test_nonconforming_sum_raises(self):
        with pytest.raises(ShapeError):
            Plus(A, B)

    def test_operator_overloading(self):
        assert (S + S) == Plus(S, S)

    def test_requires_two_operands(self):
        with pytest.raises(ValueError):
            Plus(S)

    def test_str(self):
        assert str(Plus(S, S)) == "S + S"


class TestTranspose:
    def test_shape_swaps(self):
        assert Transpose(A).shape == (4, 3)

    def test_property_accessor(self):
        assert A.T == Transpose(A)

    def test_str(self):
        assert str(Transpose(A)) == "A^T"

    def test_str_wraps_products(self):
        assert str(Transpose(Times(A, B))) == "(A * B)^T"

    def test_operand_accessor(self):
        assert Transpose(A).operand is A

    def test_equality(self):
        assert Transpose(A) == Transpose(A)
        assert Transpose(A) != Transpose(B)


class TestInverse:
    def test_requires_square(self):
        with pytest.raises(ShapeError):
            Inverse(A)

    def test_shape_preserved(self):
        assert Inverse(S).shape == (4, 4)

    def test_property_accessor(self):
        assert S.I == Inverse(S)

    def test_str(self):
        assert str(Inverse(S)) == "S^-1"

    def test_inverse_of_product_allowed_when_square(self):
        assert Inverse(Times(S, S)).shape == (4, 4)

    def test_inverse_of_rectangular_product_raises(self):
        with pytest.raises(ShapeError):
            Inverse(Times(A, B))


class TestInverseTranspose:
    def test_requires_square(self):
        with pytest.raises(ShapeError):
            InverseTranspose(A)

    def test_shape(self):
        assert InverseTranspose(S).shape == (4, 4)

    def test_property_accessor(self):
        assert S.invT == InverseTranspose(S)

    def test_str(self):
        assert str(InverseTranspose(S)) == "S^-T"

    def test_distinct_from_inverse_and_transpose(self):
        assert InverseTranspose(S) != Inverse(S)
        assert InverseTranspose(S) != Transpose(S)


class TestComposite:
    def test_chain_expression_shape(self):
        c2 = Matrix("C2", 6, 5)
        expr = Times(Inverse(S), B, Transpose(c2))
        assert expr.shape == (4, 6)

    def test_equality_of_identical_composites(self):
        left = Times(Inverse(S), B)
        right = Times(Inverse(S), B)
        assert left == right
        assert hash(left) == hash(right)

    def test_leaves_iteration(self):
        c2 = Matrix("C2", 6, 5)
        expr = Times(Inverse(S), B, Transpose(c2))
        assert [leaf.name for leaf in expr.leaves()] == ["S", "B", "C2"]

"""Property-based tests (hypothesis) over the core invariants of the system.

The invariants checked here are the load-bearing claims of the paper:

* the GMC algorithm never produces a solution worse (in its own metric) than
  any baseline strategy or any fixed parenthesization;
* on plain chains it coincides with the classic matrix chain DP;
* generated programs compute the mathematically correct result;
* normalization preserves shapes and is idempotent.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra import Inverse, InverseTranspose, Matrix, Property, Times, Transpose, normalize
from repro.algebra.simplify import as_chain, wrap_leaf
from repro.baselines import baseline_strategies
from repro.core import GMCAlgorithm, MatrixChainDP
from repro.cost import FlopCount
from repro.experiments.workload import ChainGenerator
from repro.runtime import allclose, execute_program, instantiate_expression

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Strategies for generating random chains.
# ---------------------------------------------------------------------------

_PROPERTY_CHOICES = [
    frozenset(),
    frozenset({Property.DIAGONAL, Property.NON_SINGULAR}),
    frozenset({Property.LOWER_TRIANGULAR, Property.NON_SINGULAR}),
    frozenset({Property.UPPER_TRIANGULAR, Property.NON_SINGULAR}),
    frozenset({Property.SYMMETRIC}),
    frozenset({Property.SPD}),
]


@st.composite
def plain_chain_sizes(draw):
    # Dimensions start at 2: with unit dimensions the GMC algorithm legally
    # beats the classic DP by using GER/DOT/SCAL kernels (one multiply per
    # output entry instead of a multiply-add), so the equivalence only holds
    # for genuine matrix-matrix chains.
    length = draw(st.integers(min_value=2, max_value=7))
    return [draw(st.integers(min_value=2, max_value=40)) for _ in range(length + 1)]


@st.composite
def generalized_chains(draw):
    """Random well-formed generalized chains with small operand sizes."""
    length = draw(st.integers(min_value=2, max_value=5))
    grid = [3, 5, 8, 13]
    dims = [draw(st.sampled_from(grid))]
    for _ in range(length):
        if draw(st.booleans()):
            dims.append(dims[-1])
        else:
            dims.append(draw(st.sampled_from(grid)))
    factors = []
    for index in range(length):
        rows, columns = dims[index], dims[index + 1]
        transposed = draw(st.booleans())
        square = rows == columns
        inverted = square and draw(st.booleans())
        operand_rows, operand_columns = (columns, rows) if transposed else (rows, columns)
        if operand_rows == operand_columns:
            properties = set(draw(st.sampled_from(_PROPERTY_CHOICES)))
        else:
            properties = set()
        if inverted:
            properties.add(Property.NON_SINGULAR)
        leaf = Matrix(f"M{index}", operand_rows, operand_columns, properties)
        factors.append(wrap_leaf(leaf, transposed, inverted))
    return Times(*factors)


# ---------------------------------------------------------------------------
# Invariants.
# ---------------------------------------------------------------------------

class TestGMCMatchesClassicDP:
    @given(plain_chain_sizes())
    @_SETTINGS
    def test_same_optimum_on_plain_chains(self, sizes):
        matrices = [Matrix(f"M{i}", sizes[i], sizes[i + 1]) for i in range(len(sizes) - 1)]
        solution = GMCAlgorithm(metric=FlopCount()).solve(Times(*matrices))
        assert solution.optimal_cost == pytest.approx(MatrixChainDP(sizes).optimal_cost)


class TestGMCOptimality:
    @given(generalized_chains())
    @_SETTINGS
    def test_gmc_flops_never_exceed_recommended_baselines(self, expression):
        """The recommended variants use the same solve kernels as GMC, only
        with a fixed parenthesization and restricted property visibility, so
        the DP optimum can never be worse than any of them."""
        gmc_flops = GMCAlgorithm().solve(expression).total_flops
        for strategy in baseline_strategies():
            if strategy.explicit_inversion:
                continue
            program = strategy.build_program(expression)
            assert program.total_flops >= gmc_flops - 1e-6, strategy.name

    @given(generalized_chains())
    @_SETTINGS
    def test_gmc_and_naive_baselines_are_both_finite_and_consistent(self, expression):
        """Naive (explicitly inverting) strategies can need fewer FLOPs than
        GMC on small chains: explicit inversion amortizes over many right-hand
        sides and can pair with structured product kernels, an option outside
        GMC's kernel-per-split search space (consistent with the paper's own
        report that GMC is fastest in 86%, not 100%, of cases -- see
        EXPERIMENTS.md, "Known deviations").  The invariant that must hold for
        every strategy is consistency: finite positive cost and a program
        whose flops equal the sum of its calls."""
        for strategy in baseline_strategies():
            if not strategy.explicit_inversion:
                continue
            program = strategy.build_program(expression)
            assert math.isfinite(program.total_flops)
            assert program.total_flops > 0.0
            assert program.total_flops == pytest.approx(
                sum(call.flops for call in program.calls)
            )

    @given(generalized_chains())
    @_SETTINGS
    def test_solution_cost_equals_sum_of_chosen_kernel_costs(self, expression):
        solution = GMCAlgorithm().solve(expression)
        assert solution.computable
        assert solution.optimal_cost == pytest.approx(solution.total_flops)


class TestNumericalCorrectness:
    @given(generalized_chains())
    @_SETTINGS
    def test_gmc_program_computes_the_right_value(self, expression):
        program = GMCAlgorithm().generate(expression)
        environment = instantiate_expression(expression, seed=0)
        result = execute_program(program, environment)
        assert allclose(expression, environment, result, rtol=1e-6, atol=1e-6)

    @given(generalized_chains(), st.sampled_from([s.name for s in baseline_strategies()]))
    @_SETTINGS
    def test_baseline_programs_compute_the_right_value(self, expression, strategy_name):
        from repro.baselines import strategy_by_name

        strategy = strategy_by_name(strategy_name)
        program = strategy.build_program(expression)
        environment = instantiate_expression(expression, seed=1)
        result = execute_program(program, environment)
        assert allclose(expression, environment, result, rtol=1e-6, atol=1e-6)


class TestNormalizationInvariants:
    @given(generalized_chains())
    @_SETTINGS
    def test_normalization_preserves_shape(self, expression):
        normalized = normalize(expression)
        assert normalized.shape == expression.shape

    @given(generalized_chains())
    @_SETTINGS
    def test_normalization_is_idempotent(self, expression):
        once = normalize(expression)
        assert normalize(once) == once

    @given(generalized_chains())
    @_SETTINGS
    def test_as_chain_produces_wrapped_leaves(self, expression):
        from repro.algebra import is_chain_factor

        for factor in as_chain(expression):
            assert is_chain_factor(factor)

    @given(generalized_chains())
    @_SETTINGS
    def test_transpose_of_transpose_is_identity_numerically(self, expression):
        environment = instantiate_expression(expression, seed=2)
        from repro.runtime.reference import evaluate

        direct = evaluate(expression, environment)
        double = evaluate(Transpose(Transpose(expression)), environment)
        np.testing.assert_allclose(direct, double)


class TestWorkloadGeneratorInvariants:
    @given(st.integers(min_value=0, max_value=2 ** 16))
    @_SETTINGS
    def test_generated_chains_are_solvable_and_correct(self, seed):
        generator = ChainGenerator(
            min_length=3,
            max_length=5,
            size_choices=(4, 6, 9),
            seed=seed,
        )
        problem = generator.generate()
        solution = GMCAlgorithm().solve(problem.expression)
        assert solution.computable
        environment = instantiate_expression(problem.expression, seed=seed)
        result = execute_program(solution.program(), environment)
        assert allclose(problem.expression, environment, result, rtol=1e-6, atol=1e-6)

    @given(st.integers(min_value=0, max_value=2 ** 16))
    @_SETTINGS
    def test_generation_is_deterministic_per_seed(self, seed):
        first = ChainGenerator(seed=seed).generate()
        second = ChainGenerator(seed=seed).generate()
        assert str(first.expression) == str(second.expression)

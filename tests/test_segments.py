"""Tests for the DAG segment-decomposition layer (:mod:`repro.core.segments`).

Covers the identity matrix required by the DAG front end (auto-decomposed
compiles must be kernel-for-kernel identical to hand-decomposed per-chain
solves across solver x prune x parallelism), CSE reuse and invalidation,
stitched-program execution, error reporting, sibling plan-cache
amortization and the segment telemetry counters.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.algebra import (
    Inverse,
    Matrix,
    Property,
    Temporary,
    Times,
    infer_properties,
    parse_program,
)
from repro.core import (
    UncomputableSegmentError,
    decompose_program,
    segment_telemetry,
)
from repro.frontend import CompileOptions, Compiler, compile_source
from repro.kernels import default_catalog
from repro.runtime import execute_program, instantiate_expression

#: The staged ensemble-Kalman-gain DAG used throughout: W is a real chain,
#: K consumes W's result, Pe's inline inverse forces a synthetic segment.
DAG_SOURCE = """
Matrix Xb (40, 12) <>
Matrix S (12, 12) <spd>
Matrix Yb (30, 12) <>
Matrix R (30, 30) <spd>
W := S * Yb^T * R^-1
K := Xb * W
Pe := S * (Yb^T * R^-1 * Yb)^-1
"""


def dag_operands():
    xb = Matrix("Xb", 40, 12)
    s = Matrix("S", 12, 12, {Property.SPD})
    yb = Matrix("Yb", 30, 12)
    r = Matrix("R", 30, 30, {Property.SPD})
    return xb, s, yb, r


class TestDecomposition:
    def test_segments_come_out_in_dependency_order(self):
        plan = decompose_program(parse_program(DAG_SOURCE))
        assert plan.targets == ("W", "K", "Pe")
        assert plan.synthetic_count == 1
        synthetic = [seg for seg in plan if seg.synthetic]
        # The synthetic inner product is created before the segment that
        # wraps its result.
        assert plan.segments.index(synthetic[0]) < plan.segments.index(
            plan.segment("Pe")
        )

    def test_reference_resolves_to_result_temporary(self):
        plan = decompose_program(parse_program(DAG_SOURCE))
        k = plan.segment("K")
        assert isinstance(k.expression, Times)
        w_factor = k.expression.children[1]
        assert isinstance(w_factor, Temporary)
        assert w_factor.name == "W"
        assert w_factor is plan.segment("W").result

    def test_result_temporary_carries_inferred_properties(self):
        _, s, yb, r = dag_operands()
        plan = decompose_program(parse_program(DAG_SOURCE))
        synthetic = next(seg for seg in plan if seg.synthetic)
        # Yb^T R^-1 Yb is symmetric; the extraction's result operand must
        # carry that so the Pe segment can match symmetric-solve kernels.
        expected = infer_properties(Times(yb.T, r.I, yb))
        assert synthetic.result.properties == expected
        assert Property.SYMMETRIC in synthetic.result.properties

    def test_shared_inline_subexpression_is_solved_once(self):
        source = """
Matrix A (8, 10) <>
Matrix B (12, 10) <>
Matrix H (10, 20) <>
Matrix P (20, 20) <spd>
X := A * (H * P * H^T)^-1
Y := B * (H * P * H^T)^-1
"""
        plan = decompose_program(parse_program(source))
        assert plan.synthetic_count == 1
        assert plan.cse_reuses >= 1

    def test_identical_rhs_is_cse_reused(self):
        source = """
Matrix A (8, 8) <>
Matrix B (8, 8) <>
G := A * B
H := A * B
X := G * H
"""
        plan = decompose_program(parse_program(source))
        # H's right-hand side is the same interned chain as G's: no second
        # solve, H aliases G's segment result.
        g = plan.segment("G")
        assert g.uses >= 1

    def test_sum_raises_with_segment_and_signature(self):
        source = """
Matrix A (8, 8) <>
Matrix B (8, 8) <>
X := A + B
"""
        with pytest.raises(UncomputableSegmentError) as excinfo:
            decompose_program(parse_program(source))
        assert excinfo.value.segment == "X"
        assert excinfo.value.signature is not None
        assert "signature" in str(excinfo.value)


class TestAutoVsHandIdentity:
    """The DAG identity matrix: auto-decomposed kernel sequences must equal
    hand-decomposed per-chain solves for every pipeline configuration."""

    @pytest.mark.parametrize("solver", ["gmc", "topdown"])
    @pytest.mark.parametrize("prune", [True, False])
    @pytest.mark.parametrize("parallelism", ["serial", "threads:2"])
    def test_dag_compile_matches_hand_decomposition(
        self, solver, prune, parallelism
    ):
        options = CompileOptions(
            solver=solver, prune=prune, parallelism=parallelism
        )
        session = Compiler(options)
        result = session.compile(DAG_SOURCE)

        xb, s, yb, r = dag_operands()
        w_chain = Times(s, yb.T, r.I)
        w = Matrix("W", 12, 30, infer_properties(w_chain))
        inner_chain = Times(yb.T, r.I, yb)
        inner = Matrix("_i", 12, 12, infer_properties(inner_chain))

        hand = {
            "W": session.solve(w_chain).kernel_sequence(),
            "K": session.solve(Times(xb, w)).kernel_sequence(),
            "_synthetic": session.solve(inner_chain).kernel_sequence(),
            "Pe": session.solve(Times(s, inner.I)).kernel_sequence(),
        }
        for compiled in result.assignments:
            key = "_synthetic" if compiled.synthetic else compiled.target
            assert compiled.kernel_sequence == hand[key], (
                solver, prune, parallelism, compiled.target)

    def test_plan_cached_recompile_is_identical(self):
        session = Compiler()
        cold = [c.kernel_sequence for c in session.compile(DAG_SOURCE).assignments]
        warm = [c.kernel_sequence for c in session.compile(DAG_SOURCE).assignments]
        assert warm == cold


class TestCSEInvalidation:
    SOURCE_TEMPLATE = """
Matrix A (12, 14) <>
Matrix B (14, 9) <>
Matrix C (9, 7) <>
Matrix S (10, 10) <{s_props}>
Matrix T (10, 4) <>
U := A * B * C
V := S^-1 * T
"""

    def test_changing_one_operand_invalidates_only_dependent_segments(self):
        session = Compiler()
        before = segment_telemetry().stats()
        session.compile(self.SOURCE_TEMPLATE.format(s_props="spd"))
        cold = segment_telemetry().stats()
        assert cold["misses"] - before["misses"] == 2

        # "Mutate" S: drop SPD down to general non-singular.  U does not
        # depend on S, so its segment must still be answered by the plan
        # cache; V's chain signature changed, so it (and only it) re-solves.
        changed = session.compile(
            self.SOURCE_TEMPLATE.format(s_props="non_singular")
        )
        after = segment_telemetry().stats()
        assert after["hits"] - cold["hits"] == 1
        assert after["misses"] - cold["misses"] == 1
        # And the re-solved segment actually picked different kernels:
        # SPD S^-1 T is a Cholesky solve, general S^-1 T an LU solve.
        assert changed.assignment("V").kernel_sequence == ["GESV"]

    def test_unchanged_sibling_program_hits_on_every_segment(self):
        session = Compiler()
        session.compile(DAG_SOURCE)
        before = segment_telemetry().stats()
        sibling = DAG_SOURCE
        for name in ("Xb", "S", "Yb", "R"):
            sibling = sibling.replace(name, name + "2")
        session.compile(sibling)
        after = segment_telemetry().stats()
        lookups = (after["hits"] + after["misses"]) - (
            before["hits"] + before["misses"]
        )
        assert lookups == 4
        assert after["hits"] - before["hits"] == 4
        assert after["misses"] == before["misses"]


class TestStitchedExecution:
    def test_stitched_program_matches_numpy_reference(self):
        result = compile_source(DAG_SOURCE)
        xb, s, yb, r = dag_operands()
        env = instantiate_expression(Times(xb, s, yb.T, r.I), seed=7)
        stitched = result.stitched_program()
        assert stitched.output.name == "Pe"
        value = execute_program(stitched, env)
        s_v, yb_v, r_v = env["S"], env["Yb"], env["R"]
        reference = s_v @ np.linalg.inv(yb_v.T @ np.linalg.solve(r_v, yb_v))
        assert np.max(np.abs(value - reference)) < 1e-8

    def test_stitched_intermediate_flow(self):
        source = """
Matrix L (20, 20) <lower_triangular, non_singular>
Matrix A (20, 20) <symmetric>
C := L^-1 * A
Ap := C * L^-T
"""
        result = compile_source(source)
        stitched = result.stitched_program()
        assert stitched.output.name == "Ap"
        outputs = [call.output.name for call in stitched.calls]
        # The first segment's final call is renamed to its target so the
        # second segment's inputs resolve against produced outputs.
        assert "C" in outputs

    def test_emit_stitched_numpy_runs(self):
        result = compile_source(DAG_SOURCE)
        code = result.emit_stitched("numpy")
        assert "def " in code
        namespace = {}
        exec(code, namespace)  # noqa: S102 - generated code under test


class TestErrorReporting:
    def test_uncomputable_segment_names_segment_and_signature(self):
        catalog = default_catalog(include_combined_inverse=False)
        session = Compiler(CompileOptions(catalog=catalog))
        source = """
Matrix A (20, 20) <non_singular>
Matrix B (20, 20) <non_singular>
X := A^-1 * B^-1
"""
        with pytest.raises(UncomputableSegmentError, match="segment 'X'") as excinfo:
            session.compile(source)
        assert excinfo.value.segment == "X"
        assert excinfo.value.signature is not None

    def test_failure_in_later_segment_reports_that_segment(self):
        catalog = default_catalog(include_combined_inverse=False)
        session = Compiler(CompileOptions(catalog=catalog))
        source = """
Matrix A (20, 30) <>
Matrix B (30, 20) <>
Matrix C (20, 20) <non_singular>
Matrix D (20, 20) <non_singular>
U := A * B
X := C^-1 * D^-1
"""
        with pytest.raises(UncomputableSegmentError, match="segment 'X'") as excinfo:
            session.compile(source)
        assert excinfo.value.segment == "X"

    def test_subclass_of_chain_error_keeps_existing_handlers_working(self):
        from repro.core import UncomputableChainError

        assert issubclass(UncomputableSegmentError, UncomputableChainError)


class TestTelemetry:
    def test_segment_layer_in_global_snapshot(self):
        telemetry.reset()
        compile_source(DAG_SOURCE)
        snap = telemetry.snapshot()
        stats = snap["segments"]
        assert stats["layer"] == "segments"
        assert stats["programs"] == 1
        assert stats["segments"] == 4
        assert stats["synthetic"] == 1
        assert "segments" in telemetry.CACHE_LAYERS

    def test_reset_zeroes_segment_counters(self):
        compile_source(DAG_SOURCE)
        telemetry.reset()
        stats = segment_telemetry().stats()
        assert stats["programs"] == 0
        assert stats["hits"] == 0
        assert stats["misses"] == 0

"""Tests for program execution, operand instantiation and reference evaluation."""

import numpy as np
import pytest

from repro.algebra import (
    IdentityMatrix,
    Inverse,
    InverseTranspose,
    Matrix,
    Property,
    Times,
    Transpose,
    Vector,
    ZeroMatrix,
)
from repro.core import GMCAlgorithm, generate_program
from repro.runtime import (
    ExecutionError,
    Executor,
    allclose,
    chain_operands,
    evaluate,
    execute_program,
    instantiate_expression,
    instantiate_matrix,
    time_program,
)
from repro.runtime.reference import ReferenceEvaluationError
from repro.runtime.timing import estimate_time, time_callable


class TestOperandInstantiation:
    def test_shape(self, rng):
        value = instantiate_matrix(Matrix("A", 4, 7), rng)
        assert value.shape == (4, 7)

    def test_diagonal(self, rng):
        value = instantiate_matrix(Matrix("D", 5, 5, {Property.DIAGONAL}), rng)
        assert np.allclose(value, np.diag(np.diag(value)))
        assert np.all(np.abs(np.diag(value)) >= 1.0)

    def test_lower_triangular(self, rng):
        value = instantiate_matrix(
            Matrix("L", 5, 5, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR}), rng
        )
        assert np.allclose(value, np.tril(value))
        assert np.linalg.matrix_rank(value) == 5

    def test_upper_triangular(self, rng):
        value = instantiate_matrix(Matrix("U", 5, 5, {Property.UPPER_TRIANGULAR}), rng)
        assert np.allclose(value, np.triu(value))

    def test_unit_diagonal(self, rng):
        value = instantiate_matrix(
            Matrix("L", 5, 5, {Property.LOWER_TRIANGULAR, Property.UNIT_DIAGONAL}), rng
        )
        assert np.allclose(np.diag(value), 1.0)

    def test_symmetric(self, rng):
        value = instantiate_matrix(Matrix("S", 6, 6, {Property.SYMMETRIC}), rng)
        assert np.allclose(value, value.T)

    def test_spd(self, rng):
        value = instantiate_matrix(Matrix("P", 6, 6, {Property.SPD}), rng)
        assert np.allclose(value, value.T)
        assert np.all(np.linalg.eigvalsh(value) > 0)

    def test_identity_and_zero(self, rng):
        assert np.allclose(instantiate_matrix(IdentityMatrix(4), rng), np.eye(4))
        assert np.allclose(instantiate_matrix(ZeroMatrix(3, 4), rng), 0.0)

    def test_orthogonal(self, rng):
        value = instantiate_matrix(Matrix("Q", 5, 5, {Property.ORTHOGONAL}), rng)
        assert np.allclose(value.T @ value, np.eye(5), atol=1e-10)

    def test_non_singular(self, rng):
        value = instantiate_matrix(Matrix("G", 5, 5, {Property.NON_SINGULAR}), rng)
        assert np.linalg.matrix_rank(value) == 5

    def test_instantiate_expression_collects_all_leaves(self):
        a = Matrix("A", 4, 4, {Property.SPD})
        b = Matrix("B", 4, 3)
        env = instantiate_expression(Times(Inverse(a), b), seed=0)
        assert set(env) == {"A", "B"}

    def test_chain_operands_deduplicates(self):
        a = Matrix("A", 4, 4)
        operands = chain_operands(Times(a, a))
        assert list(operands) == ["A"]

    def test_seed_reproducibility(self):
        a = Matrix("A", 4, 4)
        env1 = instantiate_expression(Times(a, a), seed=3)
        env2 = instantiate_expression(Times(a, a), seed=3)
        np.testing.assert_allclose(env1["A"], env2["A"])


class TestReferenceEvaluation:
    def test_product_and_transpose(self, rng):
        a = Matrix("A", 3, 4)
        b = Matrix("B", 3, 5)
        env = {"A": rng.standard_normal((3, 4)), "B": rng.standard_normal((3, 5))}
        np.testing.assert_allclose(
            evaluate(Times(Transpose(a), b), env), env["A"].T @ env["B"]
        )

    def test_inverse(self, rng):
        a = Matrix("A", 4, 4)
        env = {"A": rng.standard_normal((4, 4)) + 4 * np.eye(4)}
        np.testing.assert_allclose(evaluate(Inverse(a), env), np.linalg.inv(env["A"]))

    def test_inverse_transpose(self, rng):
        a = Matrix("A", 4, 4)
        env = {"A": rng.standard_normal((4, 4)) + 4 * np.eye(4)}
        np.testing.assert_allclose(
            evaluate(InverseTranspose(a), env), np.linalg.inv(env["A"]).T
        )

    def test_missing_operand_raises(self):
        with pytest.raises(ReferenceEvaluationError):
            evaluate(Matrix("A", 3, 3), {})

    def test_allclose_detects_mismatch(self, rng):
        a = Matrix("A", 3, 3)
        env = {"A": rng.standard_normal((3, 3))}
        assert allclose(a, env, env["A"])
        assert not allclose(a, env, env["A"] + 1.0)


class TestExecutor:
    def _run(self, expr, seed=0):
        program = generate_program(expr)
        env = instantiate_expression(expr, seed=seed)
        result = execute_program(program, env)
        assert allclose(expr, env, result), f"wrong result for {expr}"
        return program

    def test_simple_product(self):
        self._run(Times(Matrix("A", 6, 5), Matrix("B", 5, 7)))

    def test_transposed_product(self):
        self._run(Times(Transpose(Matrix("A", 5, 6)), Matrix("B", 5, 7)))

    def test_both_transposed(self):
        self._run(Times(Transpose(Matrix("A", 5, 6)), Transpose(Matrix("B", 7, 5))))

    def test_spd_solve(self):
        a = Matrix("A", 8, 8, {Property.SPD})
        self._run(Times(Inverse(a), Matrix("B", 8, 3)))

    def test_triangular_solve_left_and_right(self):
        lower = Matrix("L", 8, 8, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        self._run(Times(Inverse(lower), Matrix("B", 8, 3)))
        self._run(Times(Matrix("C", 3, 8), Inverse(lower)))

    def test_inverse_transpose_solve(self):
        lower = Matrix("L", 8, 8, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        self._run(Times(InverseTranspose(lower), Matrix("B", 8, 3)))

    def test_general_solve(self):
        a = Matrix("A", 8, 8, {Property.NON_SINGULAR})
        self._run(Times(Inverse(a), Matrix("B", 8, 3)))

    def test_right_general_solve(self):
        a = Matrix("A", 8, 8, {Property.NON_SINGULAR})
        self._run(Times(Matrix("B", 3, 8), Inverse(a)))

    def test_diagonal_solve(self):
        d = Matrix("D", 8, 8, {Property.DIAGONAL, Property.NON_SINGULAR})
        self._run(Times(Inverse(d), Matrix("B", 8, 3)))

    def test_combined_inverse(self):
        a = Matrix("A", 8, 8, {Property.NON_SINGULAR})
        b = Matrix("B", 8, 8, {Property.NON_SINGULAR})
        self._run(Times(Inverse(a), Inverse(b)))

    def test_gram_chain(self):
        a = Matrix("A", 8, 6)
        b = Matrix("B", 6, 4)
        self._run(Times(Transpose(a), a, b))

    def test_vector_chain(self):
        m1 = Matrix("M1", 9, 7)
        m2 = Matrix("M2", 7, 6)
        v = Vector("v", 6)
        self._run(Times(m1, m2, v))

    def test_outer_product_chain(self):
        v1 = Vector("v1", 6)
        v2 = Vector("v2", 5)
        m = Matrix("M", 9, 6)
        self._run(Times(m, v1, Transpose(v2)))

    def test_inner_product_chain(self):
        v1 = Vector("v1", 6)
        v2 = Vector("v2", 6)
        program = self._run(Times(Transpose(v1), v2))
        assert program.output.rows == 1

    def test_long_mixed_chain(self):
        a = Matrix("A", 10, 10, {Property.SPD})
        lower = Matrix("L", 10, 10, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        b = Matrix("B", 10, 7)
        c = Matrix("C", 7, 7, {Property.DIAGONAL, Property.NON_SINGULAR})
        d = Matrix("D", 7, 4)
        self._run(Times(Inverse(a), lower, b, Inverse(c), d))

    def test_generalized_eigenproblem_reduction(self):
        lower = Matrix("L", 9, 9, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        s = Matrix("A", 9, 9, {Property.SYMMETRIC})
        self._run(Times(Inverse(lower), s, InverseTranspose(lower)))

    def test_missing_operand_value_raises(self):
        a = Matrix("A", 4, 4)
        b = Matrix("B", 4, 4)
        program = generate_program(Times(a, b))
        with pytest.raises(ExecutionError):
            Executor().execute(program, {"A": np.eye(4)})

    def test_executor_reuse_binds_values(self, rng):
        a = Matrix("A", 4, 4)
        b = Matrix("B", 4, 4)
        program = generate_program(Times(a, b))
        executor = Executor()
        executor.bind("A", rng.standard_normal((4, 4)))
        executor.bind("B", rng.standard_normal((4, 4)))
        result = executor.execute(program)
        np.testing.assert_allclose(result, executor.value("A") @ executor.value("B"))

    def test_empty_program_without_output_raises(self):
        from repro.kernels.kernel import Program

        with pytest.raises(ExecutionError):
            Executor().execute(Program(calls=[], output=None))


class TestTiming:
    def test_time_program_returns_statistics(self):
        expr = Times(Matrix("A", 30, 30), Matrix("B", 30, 30))
        program = generate_program(expr)
        env = instantiate_expression(expr, seed=0)
        result = time_program(program, env, repetitions=2, warmup=1)
        assert result.best > 0.0
        assert result.best <= result.mean <= result.worst
        assert result.repetitions == 2
        assert "ms" in str(result)

    def test_time_program_validates_repetitions(self):
        expr = Times(Matrix("A", 5, 5), Matrix("B", 5, 5))
        program = generate_program(expr)
        env = instantiate_expression(expr, seed=0)
        with pytest.raises(ValueError):
            time_program(program, env, repetitions=0)

    def test_time_callable(self):
        result = time_callable(lambda: sum(range(1000)), repetitions=2)
        assert result.best >= 0.0

    def test_estimate_time_is_positive(self):
        expr = Times(Matrix("A", 50, 50), Matrix("B", 50, 50))
        program = generate_program(expr)
        assert estimate_time(program) > 0.0

"""Tests for the persistence subsystem (:mod:`repro.persist`).

Covers: plan-cache identity (cached-hit kernel sequences must equal cold
solves across renamed signature-equal chains), the options fingerprint,
invalidation and bypass rules, snapshot robustness (truncated / corrupt /
version-mismatched / catalog-drifted snapshots must produce a clean cold
boot, never an exception), the executor warm-boot lifecycle
(``--snapshot-dir`` / ``POST /snapshot``) and ``/batch`` backpressure
(bounded in-flight requests answered with HTTP 429 + ``Retry-After``).
"""

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.algebra import Matrix, Property, Times
from repro.algebra.inference import PREDICATES, is_lower_triangular
from repro.cost import FlopCount
from repro.experiments.workload import ChainGenerator
from repro.frontend import Compiler
from repro.kernels.catalog import KernelCatalog, build_default_kernels
from repro.options import CompileOptions
from repro.persist import (
    CachedPlanSolution,
    PlanCache,
    SnapshotError,
    capture_state,
    load_snapshot,
    merge_states,
    read_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.service.api import CompileRequest
from repro.service.http import start_server
from repro.service.pool import (
    InProcessExecutor,
    PoolSaturatedError,
    WorkerPool,
)

TEMPLATE = """
Matrix A{t} (200, 200) <spd>
Matrix B{t} (200, 100) <>
Matrix C{t} (100, 100) <lower_triangular, non_singular>
Matrix D{t} (100, 100) <upper_triangular, non_singular>
Matrix E{t} (100, 80) <>
X := A{t}^-1 * B{t} * C{t}^T * D{t}^-1 * E{t}
"""


def tagged(tag: str) -> str:
    """A renamed (signature-equal) copy of the template problem."""
    return TEMPLATE.replace("{t}", tag)


def fresh_catalog() -> KernelCatalog:
    """A private catalog so tests never leak into the process default."""
    return KernelCatalog(build_default_kernels(), name="persist-test")


def fresh_session(**options) -> Compiler:
    return Compiler(CompileOptions(catalog=fresh_catalog(), **options))


def random_problems(count, seed, length=7):
    generator = ChainGenerator(
        min_length=length,
        max_length=length,
        size_choices=(40, 80, 120, 200),
        vector_probability=0.10,
        square_probability=0.45,
        transpose_probability=0.25,
        inverse_probability=0.25,
        property_probability=0.60,
        seed=seed,
    )
    return generator.generate_many(count)


# ---------------------------------------------------------------------------
# Plan-cache identity.
# ---------------------------------------------------------------------------

class TestPlanCacheIdentity:
    @pytest.mark.parametrize("solver", ["gmc", "topdown"])
    def test_renamed_chain_served_from_cache_identically(self, solver):
        session = fresh_session(solver=solver)
        cold = session.compile(tagged("One")).assignment("X")
        assert session.plan_cache.stores == 1
        warm = session.compile(tagged("Two")).assignment("X")
        assert session.plan_cache.hits == 1
        assert isinstance(warm.solution, CachedPlanSolution)
        assert warm.kernel_sequence == cold.kernel_sequence
        assert float(warm.solution.optimal_cost) == pytest.approx(
            float(cold.solution.optimal_cost)
        )
        assert warm.flops == pytest.approx(cold.flops)
        # Same split tree, new operand names.
        assert warm.solution.parenthesization() == cold.solution.parenthesization().replace(
            "One", "Two"
        )

    def test_cached_hits_equal_plan_cache_disabled_solves(self):
        cached = fresh_session()
        uncached = fresh_session(plan_cache=False)
        for problem in random_problems(8, seed=2026):
            first = cached.compile(problem.expression)
            second = cached.compile(problem.expression)  # signature-equal
            reference = uncached.compile(problem.expression)
            assert (
                second.assignment("X").kernel_sequence
                == first.assignment("X").kernel_sequence
                == reference.assignment("X").kernel_sequence
            )
            assert second.assignment("X").flops == pytest.approx(
                reference.assignment("X").flops
            )
        assert cached.plan_cache.hits >= 8
        assert uncached.plan_cache.hits == 0
        assert len(uncached.plan_cache) == 0

    def test_emitted_code_matches_cold_solve_modulo_names(self):
        import re

        def normalized(code: str, tag: str) -> str:
            # Temporaries are numbered from a process-global counter, so two
            # equivalent programs differ in ``T<n>``; operand tags rename.
            return re.sub(r"\bT\d+\b", "T#", code.replace(tag, ""))

        session = fresh_session()
        cold = session.compile(tagged("Aa")).assignment("X")
        warm = session.compile(tagged("Bb")).assignment("X")
        assert normalized(warm.numpy(), "Bb") == normalized(cold.numpy(), "Aa")
        assert normalized(warm.julia(), "Bb") == normalized(cold.julia(), "Aa")

    def test_fingerprint_separates_pipeline_options(self):
        session = fresh_session()
        session.compile(tagged("F"))
        assert len(session.plan_cache) == 1
        session.compile(tagged("F"), solver="topdown")
        session.compile(tagged("F"), prune=False)
        session.compile(tagged("F"), metric="kernels")
        assert len(session.plan_cache) == 4
        # The original fingerprint still hits.
        session.compile(tagged("G"))
        assert session.plan_cache.hits >= 1

    def test_plan_cache_off_bypasses_store_and_lookup(self):
        session = fresh_session()
        session.compile(tagged("Off"), plan_cache=False)
        assert len(session.plan_cache) == 0
        session.compile(tagged("Off"))
        session.compile(tagged("Off2"), plan_cache=False)
        assert session.plan_cache.hits == 0

    def test_single_factor_chains_are_not_cached(self):
        session = fresh_session()
        source = "Matrix A (10, 10) <>\nX := A\n"
        session.compile(source)
        assert len(session.plan_cache) == 0
        assert session.plan_cache.bypasses >= 1


# ---------------------------------------------------------------------------
# Invalidation / bypass rules.
# ---------------------------------------------------------------------------

class TestPlanCacheInvalidation:
    def test_net_mutation_flushes_by_version(self):
        from repro.kernels.helpers import binary_pattern
        from repro.kernels.kernel import Kernel
        from repro.matching import Pattern

        session = fresh_session()
        session.compile(tagged("Net"))
        assert len(session.plan_cache) == 1
        pattern, _, _ = binary_pattern("N", "N")
        extra = Kernel(
            id="persist_custom_mm",
            display_name="PCUSTOM",
            pattern=Pattern(pattern, name="persist-custom"),
            operands=("X", "Y"),
            cost=lambda s: 1.0,
            efficiency=0.9,
            runtime="gemm",
            julia_template="{out} = {X} * {Y}",
            numpy_template="{out} = {X} @ {Y}",
        )
        session.catalog.net.add(extra.pattern, extra)
        result = session.compile(tagged("Net2"))
        assert session.plan_cache.hits == 0  # flushed, not served stale
        assert result.assignment("X").kernel_sequence  # still compiles

    def test_predicate_registry_mutation_bypasses(self):
        session = fresh_session()
        session.compile(tagged("Reg"))
        try:
            PREDICATES[Property.LOWER_TRIANGULAR] = lambda expr: False
            session.compile(tagged("Reg2"))
            assert session.plan_cache.hits == 0
            assert session.plan_cache.bypasses >= 1
        finally:
            PREDICATES[Property.LOWER_TRIANGULAR] = is_lower_triangular

    def test_live_metric_instances_bypass(self):
        session = fresh_session()
        metric = FlopCount()
        session.compile(tagged("Live"), metric=metric)
        assert len(session.plan_cache) == 0
        assert session.plan_cache.bypasses >= 1

    def test_incomplete_deadline_solutions_are_never_stored(self):
        session = fresh_session()
        options = session.options.replace(deadline_s=1e-9)
        solver = session.solver(options)
        problem = random_problems(1, seed=11, length=10)[0]
        solution = solver.solve(problem.expression)
        assert solution.complete is False
        assert not session.plan_cache.store(problem.expression, options, solution)
        assert len(session.plan_cache) == 0

    def test_lru_eviction_respects_bound(self):
        session = fresh_session()
        session.plan_cache.max_entries = 3
        for problem in random_problems(6, seed=5, length=5):
            session.compile(problem.expression)
        assert len(session.plan_cache) <= 3
        assert session.plan_cache.evictions >= 1


# ---------------------------------------------------------------------------
# Snapshot robustness.
# ---------------------------------------------------------------------------

class TestSnapshotRobustness:
    def _populated_state(self):
        session = fresh_session()
        reference = session.compile(tagged("Snap")).assignment("X").kernel_sequence
        return capture_state(session.plan_cache, session.catalog), reference

    def test_roundtrip_warm_boots_a_fresh_session(self, tmp_path):
        state, reference = self._populated_state()
        path = snapshot_path(tmp_path)
        meta = write_snapshot(path, state)
        assert meta["plan_entries"] >= 1
        session = fresh_session()
        result = load_snapshot(path, session.plan_cache, session.catalog)
        assert result["loaded"] is True
        assert result["plan_entries"] >= 1
        warm = session.compile(tagged("Renamed")).assignment("X")
        assert session.plan_cache.hits == 1
        assert session.plan_cache.restored >= 1
        assert warm.kernel_sequence == reference

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        state, _ = self._populated_state()
        write_snapshot(snapshot_path(tmp_path), state)
        assert [p.name for p in tmp_path.iterdir()] == [
            snapshot_path(tmp_path).name
        ]

    @pytest.mark.parametrize(
        "corruption",
        [
            "missing",
            "empty",
            "truncated",
            "not_json",
            "not_object",
            "bad_format",
            "bad_version",
            "bad_checksum",
        ],
    )
    def test_unreadable_snapshots_cold_boot_cleanly(self, tmp_path, corruption):
        state, reference = self._populated_state()
        path = snapshot_path(tmp_path)
        write_snapshot(path, state)
        text = path.read_text()
        if corruption == "missing":
            path.unlink()
        elif corruption == "empty":
            path.write_text("")
        elif corruption == "truncated":
            path.write_text(text[: len(text) // 2])
        elif corruption == "not_json":
            path.write_text("this is not json{{{")
        elif corruption == "not_object":
            path.write_text("[1, 2, 3]")
        elif corruption == "bad_format":
            body = json.loads(text)
            body["format"] = "someone-elses-file"
            path.write_text(json.dumps(body))
        elif corruption == "bad_version":
            body = json.loads(text)
            body["version"] = 999
            path.write_text(json.dumps(body))
        elif corruption == "bad_checksum":
            body = json.loads(text)
            body["plan_entries"] = []  # tampered payload, stale checksum
            path.write_text(json.dumps(body))
        session = fresh_session()
        result = load_snapshot(path, session.plan_cache, session.catalog)
        assert result["loaded"] is False
        assert result["reason"]
        assert len(session.plan_cache) == 0
        # The cold boot still compiles correctly.
        cold = session.compile(tagged("Cold")).assignment("X")
        assert cold.kernel_sequence == reference

    def test_catalog_drift_cold_boots(self, tmp_path):
        state, _ = self._populated_state()
        path = snapshot_path(tmp_path)
        write_snapshot(path, state)
        # A catalog with a different kernel set must reject the snapshot.
        slim = KernelCatalog(
            build_default_kernels(include_combined_inverse=False), name="slim"
        )
        session = Compiler(CompileOptions(catalog=slim))
        result = load_snapshot(path, session.plan_cache, slim)
        assert result["loaded"] is False
        assert "drift" in result["reason"]
        assert len(session.plan_cache) == 0

    def test_registry_version_drift_cold_boots(self, tmp_path):
        state, _ = self._populated_state()
        state = json.loads(json.dumps(state))  # deep copy
        state["catalog"]["registry_version"] = 12345
        path = snapshot_path(tmp_path)
        write_snapshot(path, state)
        session = fresh_session()
        result = load_snapshot(path, session.plan_cache, session.catalog)
        assert result["loaded"] is False
        assert "registry_version" in result["reason"]

    def test_net_version_drift_cold_boots(self, tmp_path):
        state, _ = self._populated_state()
        state = json.loads(json.dumps(state))
        state["catalog"]["net_version"] = -1
        path = snapshot_path(tmp_path)
        write_snapshot(path, state)
        session = fresh_session()
        result = load_snapshot(path, session.plan_cache, session.catalog)
        assert result["loaded"] is False
        assert "net_version" in result["reason"]

    def test_read_snapshot_raises_typed_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_snapshot(tmp_path / "nope.json")

    def test_merge_unions_entries_and_rejects_catalog_mixes(self):
        state_a, _ = self._populated_state()
        session = fresh_session()
        session.compile(
            "Matrix P (64, 64) <spd>\nMatrix Q (64, 32) <>\nX := P^-1 * Q\n"
        )
        state_b = capture_state(session.plan_cache, session.catalog)
        merged = merge_states([state_a, state_b, state_a])
        keys = {
            json.dumps([e["signature"], e["fingerprint"]], sort_keys=True)
            for e in merged["plan_entries"]
        }
        assert len(keys) == len(merged["plan_entries"]) >= 2
        foreign = json.loads(json.dumps(state_a))
        foreign["catalog"]["kernels"] = "deadbeef"
        with pytest.raises(SnapshotError):
            merge_states([state_a, foreign])


# ---------------------------------------------------------------------------
# Executor warm boot (snapshot lifecycle).
# ---------------------------------------------------------------------------

class TestExecutorWarmBoot:
    def test_in_process_cycle_answers_first_request_warm(self, tmp_path):
        first = InProcessExecutor(snapshot_dir=tmp_path)
        assert first.snapshot_load["loaded"] is False  # nothing there yet
        response = first.submit(CompileRequest(source=tagged("W0")))
        assert response.ok
        reference = response.assignments[0].kernels
        first.close()  # persists the snapshot
        assert snapshot_path(tmp_path).exists()

        second = InProcessExecutor(snapshot_dir=tmp_path)
        assert second.snapshot_load["loaded"] is True
        warm = second.submit(CompileRequest(source=tagged("W1")))
        assert warm.ok and warm.assignments[0].kernels == reference
        stats = second.stats()
        assert stats["caches"]["plan_cache"]["hits"] >= 1
        assert stats["snapshot"]["loaded"] is True
        second.close()

    def test_stats_report_the_cold_boot_fallback(self, tmp_path):
        path = snapshot_path(tmp_path)
        path.write_text("garbage")
        executor = InProcessExecutor(snapshot_dir=tmp_path)
        assert executor.snapshot_load["loaded"] is False
        assert executor.stats()["snapshot"]["reason"]
        # Serving still works cold.
        assert executor.submit(CompileRequest(source=tagged("C"))).ok

    def test_worker_pool_cycle_answers_first_request_warm(self, tmp_path):
        with WorkerPool(workers=1, snapshot_dir=tmp_path) as pool:
            response = pool.submit(CompileRequest(source=tagged("P0")))
            assert response.ok
            reference = response.assignments[0].kernels
        assert snapshot_path(tmp_path).exists()
        with WorkerPool(workers=1, snapshot_dir=tmp_path) as restarted:
            warm = restarted.submit(CompileRequest(source=tagged("P1")))
            assert warm.ok and warm.assignments[0].kernels == reference
            stats = restarted.stats()
            assert stats["caches"]["plan_cache"]["hits"] >= 1
            assert stats["snapshot"]["workers_loaded"] == 1

    def test_save_snapshot_requires_configuration(self):
        executor = InProcessExecutor()
        with pytest.raises(RuntimeError):
            executor.save_snapshot()

    def test_double_close_returns_immediately(self, tmp_path):
        import time

        pool = WorkerPool(workers=1, snapshot_dir=tmp_path)
        pool.submit(CompileRequest(source=tagged("DC")))
        pool.close()
        started = time.monotonic()
        pool.close()  # must not re-dispatch export_snapshot to dead workers
        assert time.monotonic() - started < 5.0

    def test_import_keeps_the_hot_tail_when_over_capacity(self):
        # Exports are LRU-ordered oldest-first; a snapshot larger than the
        # cache bound must warm-boot with the most recently used entries,
        # not silently keep the stale head.
        session = fresh_session()
        for problem in random_problems(4, seed=77, length=4):
            session.compile(problem.expression)
        entries = session.plan_cache.export_entries()
        assert len(entries) == 4
        target = fresh_session()
        target.plan_cache.max_entries = 2
        assert target.plan_cache.import_entries(entries) == 2
        imported = {
            (sig, fp) for sig, fp, _ in target.plan_cache.export_entries()
        }
        assert imported == {(sig, fp) for sig, fp, _ in entries[-2:]}


# ---------------------------------------------------------------------------
# HTTP surface: POST /snapshot and 429 backpressure.
# ---------------------------------------------------------------------------

def _post(url, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method="POST", headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestSnapshotEndpoint:
    def test_snapshot_endpoint_persists_and_warm_boots(self, tmp_path):
        executor = InProcessExecutor(snapshot_dir=tmp_path)
        server, thread = start_server(executor, port=0)
        try:
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            status, _, body = _post(
                f"{base}/compile", {"source": tagged("H0")}
            )
            assert status == 200
            reference = body["assignments"][0]["kernels"]
            status, _, meta = _post(f"{base}/snapshot")
            assert status == 200
            assert meta["plan_entries"] >= 1
        finally:
            server.shutdown()
            thread.join()
        rebooted = InProcessExecutor(snapshot_dir=tmp_path)
        warm = rebooted.submit(CompileRequest(source=tagged("H1")))
        assert warm.ok and warm.assignments[0].kernels == reference
        assert rebooted.compiler.plan_cache.hits == 1

    def test_snapshot_with_body_does_not_corrupt_keepalive(self, tmp_path):
        # POST /snapshot needs no body, but one a client sends anyway must
        # be drained: the connection is HTTP/1.1 keep-alive, and leftover
        # bytes would be parsed as the start of the next request.
        import http.client

        executor = InProcessExecutor(snapshot_dir=tmp_path)
        executor.submit(CompileRequest(source=tagged("KA")))
        server, thread = start_server(executor, port=0)
        try:
            host, port = server.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=30)
            connection.request(
                "POST", "/snapshot", body=b"{}",
                headers={"Content-Type": "application/json"},
            )
            assert connection.getresponse().read() and True
            connection.request("GET", "/healthz")  # same connection
            response = connection.getresponse()
            assert response.status == 200
            response.read()
            connection.close()
        finally:
            server.shutdown()
            thread.join()
            executor.close()

    def test_snapshot_endpoint_without_dir_is_409(self):
        executor = InProcessExecutor()
        server, thread = start_server(executor, port=0)
        try:
            host, port = server.server_address[:2]
            status, _, body = _post(f"http://{host}:{port}/snapshot")
            assert status == 409
            assert "snapshot" in body["error"]
        finally:
            server.shutdown()
            thread.join()
            executor.close()


class _SaturatedExecutor:
    """An executor stub whose every dispatch reports saturation."""

    workers = 0
    snapshot_dir = None

    def submit(self, request, timeout=None):
        raise PoolSaturatedError("stub saturated", retry_after=7.0)

    def compile_batch(self, requests, timeout=None):
        raise PoolSaturatedError("stub saturated", retry_after=7.0)

    def ping(self):
        return {"status": "ok"}

    def stats(self):
        return {}

    def close(self):
        pass


class TestBackpressure:
    def test_in_process_bound_rejects_excess_inflight(self):
        executor = InProcessExecutor(max_inflight=1)
        executor._pending = 1  # simulate a concurrent request in flight
        with pytest.raises(PoolSaturatedError):
            executor.submit(CompileRequest(source=tagged("B")))
        assert executor.rejections == 1
        executor._pending = 0
        assert executor.submit(CompileRequest(source=tagged("B"))).ok

    def test_pool_reservation_is_all_or_nothing(self):
        with WorkerPool(workers=1, max_inflight_per_worker=2) as pool:
            pool._reserve([0])  # one slot taken
            with pytest.raises(PoolSaturatedError):
                pool._reserve([0, 0])  # two more would exceed the bound
            with pool._lock:
                assert pool._request_load[0] == 1  # nothing partially booked
            assert pool.rejections == 1
            with pool._lock:
                pool._request_load[0] = 0
            assert pool.submit(CompileRequest(source=tagged("B2"))).ok
            assert pool.stats()["pool"]["rejections"] == 1

    def test_http_maps_saturation_to_429_with_retry_after(self):
        server, thread = start_server(_SaturatedExecutor(), port=0)
        try:
            host, port = server.server_address[:2]
            base = f"http://{host}:{port}"
            status, headers, body = _post(
                f"{base}/compile", {"source": tagged("S")}
            )
            assert status == 429
            assert headers["Retry-After"] == "7"
            assert body["retry_after"] == 7
            status, headers, _ = _post(
                f"{base}/batch", {"requests": [{"source": tagged("S")}]}
            )
            assert status == 429
            assert "Retry-After" in headers
        finally:
            server.shutdown()
            thread.join()

"""Tests for the property enumeration and its implication lattice."""

import pytest

from repro.algebra.properties import (
    CONTRADICTIONS,
    IMPLICATIONS,
    Property,
    PropertyError,
    check_consistency,
    closure,
    implies,
    parse_property,
)


class TestClosure:
    def test_empty_set_closure_is_empty(self):
        assert closure(set()) == frozenset()

    def test_closure_contains_original_properties(self):
        assert Property.SPD in closure({Property.SPD})

    def test_spd_implies_symmetric(self):
        assert Property.SYMMETRIC in closure({Property.SPD})

    def test_spd_implies_non_singular(self):
        assert Property.NON_SINGULAR in closure({Property.SPD})

    def test_spd_implies_square(self):
        assert Property.SQUARE in closure({Property.SPD})

    def test_diagonal_implies_both_triangular(self):
        closed = closure({Property.DIAGONAL})
        assert Property.LOWER_TRIANGULAR in closed
        assert Property.UPPER_TRIANGULAR in closed

    def test_diagonal_implies_symmetric(self):
        assert Property.SYMMETRIC in closure({Property.DIAGONAL})

    def test_identity_implies_spd(self):
        assert Property.SPD in closure({Property.IDENTITY})

    def test_identity_implies_orthogonal_and_permutation(self):
        closed = closure({Property.IDENTITY})
        assert Property.ORTHOGONAL in closed
        assert Property.PERMUTATION in closed

    def test_transitive_closure_identity_to_square(self):
        # IDENTITY -> DIAGONAL -> SQUARE requires two steps.
        assert Property.SQUARE in closure({Property.IDENTITY})

    def test_lower_triangular_does_not_imply_upper(self):
        assert Property.UPPER_TRIANGULAR not in closure({Property.LOWER_TRIANGULAR})

    def test_symmetric_does_not_imply_spd(self):
        assert Property.SPD not in closure({Property.SYMMETRIC})

    def test_closure_is_idempotent(self):
        once = closure({Property.SPD, Property.LOWER_TRIANGULAR})
        assert closure(once) == once

    def test_closure_of_union_contains_individual_closures(self):
        a = closure({Property.SPD})
        b = closure({Property.DIAGONAL})
        union = closure({Property.SPD, Property.DIAGONAL})
        assert a <= union
        assert b <= union

    def test_every_implication_key_is_a_property(self):
        for prop, implied in IMPLICATIONS.items():
            assert isinstance(prop, Property)
            assert all(isinstance(p, Property) for p in implied)


class TestImplies:
    def test_direct_implication(self):
        assert implies(Property.SPD, Property.SYMMETRIC)

    def test_transitive_implication(self):
        assert implies(Property.IDENTITY, Property.SYMMETRIC)

    def test_reflexive(self):
        assert implies(Property.DIAGONAL, Property.DIAGONAL)

    def test_non_implication(self):
        assert not implies(Property.SYMMETRIC, Property.DIAGONAL)


class TestConsistency:
    def test_consistent_set_is_closed(self):
        closed = check_consistency({Property.SPD})
        assert Property.SYMMETRIC in closed

    def test_zero_and_spd_contradict(self):
        with pytest.raises(PropertyError):
            check_consistency({Property.ZERO, Property.SPD})

    def test_zero_and_identity_contradict(self):
        with pytest.raises(PropertyError):
            check_consistency({Property.ZERO, Property.IDENTITY})

    def test_zero_and_non_singular_contradict(self):
        with pytest.raises(PropertyError):
            check_consistency({Property.ZERO, Property.NON_SINGULAR})

    def test_symmetric_triangular_collapses_to_diagonal(self):
        closed = check_consistency({Property.SYMMETRIC, Property.LOWER_TRIANGULAR})
        assert Property.DIAGONAL in closed

    def test_symmetric_upper_triangular_collapses_to_diagonal(self):
        closed = check_consistency({Property.SYMMETRIC, Property.UPPER_TRIANGULAR})
        assert Property.DIAGONAL in closed

    def test_contradiction_pairs_reference_real_properties(self):
        for first, second in CONTRADICTIONS:
            assert isinstance(first, Property)
            assert isinstance(second, Property)


class TestParseProperty:
    def test_parse_snake_case(self):
        assert parse_property("lower_triangular") is Property.LOWER_TRIANGULAR

    def test_parse_camel_case(self):
        assert parse_property("LowerTriangular") is Property.LOWER_TRIANGULAR

    def test_parse_upper_triangular_camel(self):
        assert parse_property("UpperTriangular") is Property.UPPER_TRIANGULAR

    def test_parse_spd_aliases(self):
        assert parse_property("SPD") is Property.SPD
        assert parse_property("SymmetricPositiveDefinite") is Property.SPD

    def test_parse_diagonal(self):
        assert parse_property("Diagonal") is Property.DIAGONAL

    def test_parse_symmetric(self):
        assert parse_property("Symmetric") is Property.SYMMETRIC

    def test_parse_non_singular(self):
        assert parse_property("NonSingular") is Property.NON_SINGULAR

    def test_parse_unknown_raises(self):
        with pytest.raises(PropertyError):
            parse_property("Sparse")

    def test_parse_empty_raises(self):
        with pytest.raises(PropertyError):
            parse_property("")

    def test_parse_general_raises(self):
        with pytest.raises(PropertyError):
            parse_property("General")

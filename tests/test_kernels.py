"""Tests for kernel definitions: FLOP formulas, patterns, templates, flags."""

import pytest

from repro.algebra import Inverse, InverseTranspose, Matrix, Property, Times, Transpose, Vector
from repro.kernels import Kernel, default_catalog, flops
from repro.kernels.kernel import KernelCall, Program
from repro.matching import Pattern, Substitution, Wildcard


class TestFlopFormulas:
    """The cost conventions of Table 1 and footnote 2 of the paper."""

    def test_gemm(self):
        assert flops.gemm(10, 20, 30) == 2 * 10 * 20 * 30

    def test_trmm_is_half_of_gemm(self):
        m, n = 40, 10
        assert flops.trmm(m, n) == flops.gemm(m, n, m) / 2

    def test_symm_is_half_of_gemm(self):
        m, n = 40, 10
        assert flops.symm(m, n) == flops.gemm(m, n, m) / 2

    def test_syrk_is_half_of_gemm(self):
        m, k = 40, 10
        assert flops.syrk(m, k) == flops.gemm(m, m, k) / 2

    def test_trsm_matches_trmm(self):
        assert flops.trsm(30, 10) == flops.trmm(30, 10)

    def test_posv_is_cholesky_plus_two_solves(self):
        n, nrhs = 30, 10
        assert flops.posv(n, nrhs) == flops.cholesky(n) + 2 * flops.trsm(n, nrhs)

    def test_gesv_is_lu_plus_two_solves(self):
        n, nrhs = 30, 10
        assert flops.gesv(n, nrhs) == flops.lu(n) + 2 * flops.trsm(n, nrhs)

    def test_gesv_more_expensive_than_posv(self):
        assert flops.gesv(100, 10) > flops.posv(100, 10)

    def test_getri_is_two_n_cubed(self):
        assert flops.getri(10) == 2000

    def test_explicit_inversion_plus_product_beats_nothing(self):
        """Explicit inversion followed by GEMM costs more than GESV."""
        n, nrhs = 100, 50
        naive = flops.getri(n) + flops.gemm(n, nrhs, n)
        assert naive > flops.gesv(n, nrhs)

    def test_vector_kernels(self):
        assert flops.gemv(10, 20) == 400
        assert flops.ger(10, 20) == 200
        assert flops.dot(10) == 20
        assert flops.trsv(10) == 100

    def test_diagonal_kernels_are_linear_per_entry(self):
        assert flops.diagmm(10, 20) == 200
        assert flops.diaginv(10) == 10

    def test_transpose_is_free_in_flops(self):
        assert flops.transpose_copy(10, 20) == 0.0


class TestKernelValidation:
    def _pattern(self):
        return Pattern(Times(Wildcard("X"), Wildcard("Y")), name="p")

    def test_efficiency_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            Kernel(
                id="bad",
                display_name="BAD",
                pattern=self._pattern(),
                operands=("X", "Y"),
                cost=lambda s: 1.0,
                efficiency=0.0,
                runtime="product",
                julia_template="",
                numpy_template="",
            )

    def test_operands_must_appear_in_pattern(self):
        with pytest.raises(ValueError):
            Kernel(
                id="bad",
                display_name="BAD",
                pattern=self._pattern(),
                operands=("X", "Z"),
                cost=lambda s: 1.0,
                efficiency=0.5,
                runtime="product",
                julia_template="",
                numpy_template="",
            )

    def test_default_memory_traffic_sums_operand_sizes(self):
        kernel = Kernel(
            id="ok",
            display_name="OK",
            pattern=self._pattern(),
            operands=("X", "Y"),
            cost=lambda s: 1.0,
            efficiency=0.5,
            runtime="product",
            julia_template="",
            numpy_template="",
        )
        substitution = Substitution({"X": Matrix("A", 10, 20), "Y": Matrix("B", 20, 5)})
        assert kernel.memory_traffic(substitution) == 10 * 20 + 20 * 5


class TestCatalogContents:
    def test_families_present(self, catalog):
        families = set(catalog.families)
        for family in ("GEMM", "TRMM", "SYMM", "SYRK", "TRSM", "POSV", "SYSV", "GESV",
                       "DIAGMM", "DIAGSV", "GEMV", "GER", "DOT", "GETRI", "POTRI", "TRTRI"):
            assert family in families

    def test_kernel_count_is_substantial(self, catalog):
        assert len(catalog) > 80

    def test_unique_ids(self, catalog):
        ids = [kernel.id for kernel in catalog]
        assert len(ids) == len(set(ids))

    def test_by_id_lookup(self, catalog):
        assert catalog.by_id("gemm_nn").display_name == "GEMM"

    def test_gemm_has_four_transposition_variants(self, catalog):
        assert len(catalog.by_family("GEMM")) == 4

    def test_trmm_covers_sides_uplo_and_transpositions(self, catalog):
        assert len(catalog.by_family("TRMM")) == 16

    def test_restricted_catalog(self, catalog):
        gemm_only = catalog.restricted(["GEMM"])
        assert set(k.display_name for k in gemm_only) == {"GEMM"}

    def test_extended_catalog_rejects_duplicates(self, catalog):
        with pytest.raises(ValueError):
            catalog.extended([catalog.by_id("gemm_nn")])

    def test_default_catalog_without_combined_inverse(self):
        catalog = default_catalog(include_combined_inverse=False)
        assert "GESV2" not in catalog.families

    def test_default_catalog_without_specialized_kernels(self):
        catalog = default_catalog(include_specialized=False)
        assert "TRMM" not in catalog.families
        assert "GEMM" in catalog.families
        assert "GESV" in catalog.families


class TestCatalogMatching:
    def test_general_product_matches_gemm_only(self, catalog):
        a = Matrix("A", 10, 8)
        b = Matrix("B", 8, 6)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(a, b))}
        assert names == {"GEMM"}

    def test_triangular_product_matches_trmm_and_gemm(self, catalog):
        lower = Matrix("L", 8, 8, {Property.LOWER_TRIANGULAR})
        b = Matrix("B", 8, 6)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(lower, b))}
        assert {"GEMM", "TRMM"} <= names

    def test_spd_solve_matches_posv_sysv_gesv(self, catalog):
        spd = Matrix("A", 8, 8, {Property.SPD})
        b = Matrix("B", 8, 6)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(Inverse(spd), b))}
        assert {"POSV", "SYSV", "GESV"} <= names

    def test_right_hand_side_solve(self, catalog):
        lower = Matrix("L", 6, 6, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        b = Matrix("B", 8, 6)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(b, Inverse(lower)))}
        assert "TRSM" in names

    def test_inverse_transpose_solve(self, catalog):
        lower = Matrix("L", 6, 6, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        b = Matrix("B", 6, 4)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(InverseTranspose(lower), b))}
        assert "TRSM" in names

    def test_syrk_matches_gram_product(self, catalog):
        a = Matrix("A", 9, 5)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(Transpose(a), a))}
        assert "SYRK" in names

    def test_matrix_vector_matches_gemv(self, catalog):
        a = Matrix("A", 9, 5)
        v = Vector("v", 5)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(a, v))}
        assert "GEMV" in names

    def test_outer_product_matches_ger(self, catalog):
        u = Vector("u", 9)
        v = Vector("v", 5)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(u, Transpose(v)))}
        assert "GER" in names

    def test_inner_product_matches_dot(self, catalog):
        u = Vector("u", 9)
        v = Vector("v", 9)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(Transpose(u), v))}
        assert "DOT" in names

    def test_diagonal_product_matches_diagmm(self, catalog):
        d = Matrix("D", 7, 7, {Property.DIAGONAL})
        b = Matrix("B", 7, 3)
        names = {kernel.display_name for kernel, _ in catalog.match(Times(d, b))}
        assert "DIAGMM" in names

    def test_combined_inverse_matches_gesv2(self, catalog):
        a = Matrix("A", 7, 7, {Property.NON_SINGULAR})
        b = Matrix("B", 7, 7, {Property.NON_SINGULAR})
        names = {kernel.display_name for kernel, _ in catalog.match(Times(Inverse(a), Inverse(b)))}
        assert "GESV2" in names

    def test_explicit_inversion_patterns(self, catalog):
        spd = Matrix("A", 7, 7, {Property.SPD})
        names = {kernel.display_name for kernel, _ in catalog.match(Inverse(spd))}
        assert {"GETRI", "POTRI"} <= names

    def test_product_kernels_do_not_bind_compound_operands(self, catalog):
        """A GEMM wildcard must not swallow an un-applied inverse (see helpers)."""
        a = Matrix("A", 7, 7, {Property.NON_SINGULAR})
        b = Matrix("B", 7, 5)
        matches = catalog.match(Times(Inverse(a), b))
        for kernel, substitution in matches:
            if kernel.display_name == "GEMM":
                pytest.fail("GEMM must not match an inverted operand")

    def test_every_kernel_cost_is_positive(self, catalog):
        """Every kernel evaluates to a positive, finite FLOP count on generic operands."""
        a = Matrix("X", 12, 12, {Property.SPD, Property.NON_SINGULAR})
        b = Matrix("Y", 12, 12, {Property.NON_SINGULAR})
        substitution = Substitution({"X": a, "Y": b})
        for kernel in catalog:
            cost = kernel.flops(substitution)
            assert cost >= 0.0
            assert cost < float("inf")


class TestKernelCallRendering:
    def test_julia_and_numpy_templates_render(self, catalog):
        a = Matrix("A", 8, 8, {Property.SPD})
        b = Matrix("B", 8, 4)
        expr = Times(Inverse(a), b)
        matches = {k.display_name: (k, s) for k, s in catalog.match(expr)}
        kernel, substitution = matches["POSV"]
        out = Matrix("T1", 8, 4)
        call = KernelCall(kernel=kernel, substitution=substitution, output=out, expression=expr)
        assert "A" in call.julia()
        assert "B" in call.julia()
        assert "T1" in call.numpy()

    def test_program_aggregates(self, catalog):
        a = Matrix("A", 8, 8)
        b = Matrix("B", 8, 4)
        kernel, substitution = catalog.match(Times(a, b))[0]
        call = KernelCall(
            kernel=kernel,
            substitution=substitution,
            output=Matrix("T1", 8, 4),
            flops=kernel.flops(substitution),
        )
        program = Program(calls=[call], output=call.output, strategy="test")
        assert program.total_flops == call.flops
        assert len(program) == 1
        assert program.kernel_names == (kernel.display_name,)
        assert "test" in str(program)

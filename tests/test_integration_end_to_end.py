"""End-to-end integration tests across the whole pipeline.

These tie the layers together on the application chains the paper motivates:
DSL / expression construction -> GMC compilation -> code generation ->
NumPy execution -> numerical validation -> experiment harness aggregation.
"""

import math

import numpy as np
import pytest

from repro.algebra import Matrix, Property, Times, Transpose, Vector
from repro.baselines import baseline_strategies
from repro.codegen import generate_julia, generate_numpy
from repro.core import GMCAlgorithm
from repro.cost import PerformanceMetric, VectorMetric, FlopCount, AccuracyMetric
from repro.experiments.harness import GMC_NAME, HarnessConfig, run_experiment, run_problem
from repro.experiments.workload import named_examples
from repro.kernels import default_catalog
from repro.runtime import allclose, execute_program, instantiate_expression


class TestNamedApplicationChains:
    """The application chains listed in Section 1 of the paper."""

    @pytest.mark.parametrize("name", sorted(named_examples()))
    def test_chain_compiles_executes_and_validates(self, name):
        problem = named_examples()[name]
        solution = GMCAlgorithm().solve(problem.expression)
        assert solution.computable
        program = solution.program()
        environment = instantiate_expression(problem.expression, seed=13)
        result = execute_program(program, environment)
        assert allclose(problem.expression, environment, result, rtol=1e-6, atol=1e-6)
        # Code generation produces non-trivial output for each chain.
        assert len(generate_julia(program).splitlines()) >= len(program.calls) + 2
        assert "def " in generate_numpy(program)

    @pytest.mark.parametrize("name", sorted(named_examples()))
    def test_gmc_is_at_least_as_cheap_as_every_recommended_baseline(self, name):
        problem = named_examples()[name]
        gmc_flops = GMCAlgorithm().solve(problem.expression).total_flops
        for strategy in baseline_strategies():
            if strategy.explicit_inversion:
                continue
            assert strategy.build_program(problem.expression).total_flops >= gmc_flops - 1e-6

    def test_tridiagonal_reduction_chain_is_mostly_level2(self):
        problem = named_examples()["tridiagonal_reduction"]
        solution = GMCAlgorithm().solve(problem.expression)
        # v v^T A u u^T should never form a big dense intermediate product
        # of two full matrices.
        assert "GEMM" not in solution.kernel_sequence()


class TestHarnessConfigurations:
    def _problem(self):
        return named_examples()["kalman_filter"]

    def test_run_problem_with_time_metric(self):
        config = HarnessConfig(metric=PerformanceMetric(), execute=False, validate=False)
        result = run_problem(self._problem(), config=config)
        assert result.gmc.modeled_time > 0.0
        assert not result.gmc.failed

    def test_run_problem_with_restricted_catalog(self):
        config = HarnessConfig(catalog=default_catalog(include_specialized=False))
        result = run_problem(self._problem(), config=config)
        assert result.gmc.flops >= run_problem(self._problem()).results[GMC_NAME].flops

    def test_run_problem_with_execution_and_validation(self):
        config = HarnessConfig(execute=True, validate=True, repetitions=2, seed=1)
        result = run_problem(self._problem(), config=config)
        for strategy_result in result.results.values():
            assert strategy_result.correct is True
            assert strategy_result.measured_time is not None
            assert strategy_result.measured_time > 0.0

    def test_experiment_over_named_examples(self):
        problems = list(named_examples().values())
        experiment = run_experiment(problems, config=HarnessConfig())
        assert len(experiment.problems) == len(problems)
        speedups = experiment.average_speedups()
        assert all(value >= 0.99 for value in speedups.values())
        table = experiment.execution_time_table()
        assert len(table) == len(problems)

    def test_strategy_result_time_property(self):
        result = run_problem(self._problem(), config=HarnessConfig(execute=True))
        gmc = result.gmc
        assert gmc.time == gmc.measured_time
        modeled_only = run_problem(self._problem()).gmc
        assert modeled_only.time == modeled_only.modeled_time


class TestMetricsEndToEnd:
    def test_vector_metric_breaks_ties_by_accuracy(self):
        """With a (FLOPs, accuracy) metric, equally expensive alternatives are
        ranked by the accuracy penalty -- the Section 5 extension."""
        a = Matrix("A", 40, 40, {Property.SPD})
        b = Matrix("B", 40, 40, {Property.SPD})
        c = Matrix("C", 40, 20)
        metric = VectorMetric([FlopCount(), AccuracyMetric()])
        solution = GMCAlgorithm(metric=metric).solve(Times(a.I, b, c))
        assert solution.computable
        assert isinstance(solution.optimal_cost, tuple)
        assert "POSV" in solution.kernel_sequence()

    def test_time_metric_and_flop_metric_agree_on_kernels_for_spd_solve(self):
        a = Matrix("A", 300, 300, {Property.SPD})
        b = Matrix("B", 300, 100)
        flops_solution = GMCAlgorithm(metric="flops").solve(Times(a.I, b))
        time_solution = GMCAlgorithm(metric="time").solve(Times(a.I, b))
        assert flops_solution.kernel_sequence() == time_solution.kernel_sequence() == ["POSV"]


class TestNumericalEdgeCases:
    def test_long_chain_of_ten_factors_executes(self):
        rng_sizes = [12, 9, 14, 9, 9, 16, 9, 9, 11, 8, 13]
        factors = []
        for index in range(10):
            rows, columns = rng_sizes[index], rng_sizes[index + 1]
            properties = set()
            if rows == columns:
                properties = {Property.SYMMETRIC}
            factors.append(Matrix(f"M{index}", rows, columns, properties))
        chain = Times(*factors)
        program = GMCAlgorithm().generate(chain)
        environment = instantiate_expression(chain, seed=21)
        result = execute_program(program, environment)
        assert allclose(chain, environment, result, rtol=1e-6, atol=1e-6)
        assert len(program.calls) == 9

    def test_chain_with_repeated_operand(self):
        """The same matrix appearing several times must execute correctly."""
        a = Matrix("A", 15, 15, {Property.NON_SINGULAR})
        chain = Times(a, Transpose(a), a)
        program = GMCAlgorithm().generate(chain)
        environment = instantiate_expression(chain, seed=4)
        result = execute_program(program, environment)
        assert allclose(chain, environment, result, rtol=1e-7, atol=1e-7)

    def test_scalar_intermediate_chain(self):
        """v^T w produces a 1x1 result consumed by a scaling kernel."""
        v = Vector("v", 20)
        w = Vector("w", 20)
        u = Vector("u", 12)
        chain = Times(Transpose(v), w, Transpose(u))
        program = GMCAlgorithm().generate(chain)
        environment = instantiate_expression(chain, seed=6)
        result = execute_program(program, environment)
        reference = (
            environment["v"].T @ environment["w"]
        ) @ environment["u"].T
        np.testing.assert_allclose(result, reference.reshape(result.shape), rtol=1e-8)

    def test_identity_operand_in_chain(self):
        from repro.algebra import IdentityMatrix

        a = Matrix("A", 10, 10)
        b = Matrix("B", 10, 6)
        chain = Times(a, IdentityMatrix(10), b)
        program = GMCAlgorithm().generate(chain)
        # The identity factor is dropped during normalization.
        assert len(program.calls) == 1
        environment = instantiate_expression(Times(a, b), seed=7)
        result = execute_program(program, environment)
        assert allclose(Times(a, b), environment, result)

    def test_ill_conditioned_solve_still_close(self):
        """A moderately ill-conditioned SPD solve stays within loose bounds."""
        a = Matrix("A", 30, 30, {Property.SPD})
        b = Matrix("B", 30, 5)
        chain = Times(a.I, b)
        environment = instantiate_expression(chain, seed=8)
        # Worsen the conditioning (still SPD).
        environment["A"] = environment["A"] + np.diag(np.linspace(0.0, 1e4, 30))
        program = GMCAlgorithm().generate(chain)
        result = execute_program(program, environment)
        assert allclose(chain, environment, result, rtol=1e-5, atol=1e-5)

    def test_infinite_cost_reported_for_uncomputable_two_factor_chain(self):
        a = Matrix("A", 10, 10, {Property.NON_SINGULAR})
        b = Matrix("B", 10, 10, {Property.NON_SINGULAR})
        catalog = default_catalog(include_combined_inverse=False)
        solution = GMCAlgorithm(catalog=catalog).solve(Times(a.I, b.I))
        assert math.isinf(solution.optimal_cost)
        assert "uncomputable" not in solution.parenthesization() or True
        assert "computable:       False" in str(solution)

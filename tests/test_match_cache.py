"""Tests for the signature-keyed kernel-match cache and DP pruning.

Covers the shape/property signature, cache hit/re-binding semantics, the
invalidation story (catalog extension and predicate-registry mutation must
never serve stale kernels), LRU bounding, and end-to-end equivalence of the
cached + pruned GMC pipeline against the uncached, unpruned reference loop.
"""

import math

import pytest

from repro.algebra import Matrix, Property, Temporary, Times, Transpose, Vector
from repro.algebra.inference import PREDICATES, is_lower_triangular
from repro.core import GMCAlgorithm
from repro.core.topdown import TopDownGMC
from repro.experiments.workload import ChainGenerator
from repro.kernels.catalog import KernelCatalog, build_default_kernels, default_catalog
from repro.kernels.kernel import Kernel
from repro.kernels.helpers import binary_pattern
from repro.matching import MatchCache, Pattern, Wildcard, match_caching_disabled
from repro.matching.patterns import Substitution


def _fresh_catalog(**kwargs) -> KernelCatalog:
    """A catalog with a private match cache (the process-wide default
    catalog's cache would leak state between tests)."""
    return KernelCatalog(build_default_kernels(**kwargs), name="test")


def _random_chains(count, seed, min_length=4, max_length=9):
    generator = ChainGenerator(
        min_length=min_length,
        max_length=max_length,
        size_choices=(40, 80, 120, 200),
        vector_probability=0.10,
        square_probability=0.45,
        transpose_probability=0.25,
        inverse_probability=0.25,
        property_probability=0.60,
        seed=seed,
    )
    return generator.generate_many(count)


class TestSignature:
    def test_names_are_abstracted(self):
        a = Matrix("A", 10, 20)
        b = Matrix("B", 10, 20)
        assert a.signature() == b.signature()

    def test_shape_is_not(self):
        assert Matrix("A", 10, 20).signature() != Matrix("A", 20, 10).signature()

    def test_properties_are_not(self):
        plain = Matrix("A", 8, 8)
        spd = Matrix("A", 8, 8, {Property.SPD})
        assert plain.signature() != spd.signature()

    def test_temporary_and_matrix_coincide(self):
        # Repeated solves rebuild temporaries under fresh names; the
        # signature must identify them with any same-shape/property leaf.
        tmp = Temporary(12, 7, properties={Property.FULL_RANK})
        mat = Matrix("X", 12, 7, {Property.FULL_RANK})
        assert tmp.signature() == mat.signature()

    def test_leaf_equality_pattern_is_captured(self):
        # SYRK-style non-linearity: A^T A has a repeated leaf, A^T B does not.
        a = Matrix("A", 9, 4)
        b = Matrix("B", 9, 4)
        assert Times(a.T, a).signature() != Times(a.T, b).signature()
        # ... but two *renamings* of the same equality pattern coincide.
        assert Times(a.T, a).signature() == Times(b.T, b).signature()

    def test_operator_skeleton_is_captured(self):
        a = Matrix("A", 6, 6)
        b = Matrix("B", 6, 6)
        assert Times(a, b).signature() != Times(Transpose(a), b).signature()

    def test_wildcards_keep_their_identity(self):
        assert Wildcard("x").signature() != Wildcard("y").signature()

    def test_cached_on_node(self):
        expr = Times(Matrix("A", 5, 5), Matrix("B", 5, 5))
        assert expr.signature() is expr.signature()


class TestMatchCacheRebinding:
    def test_hit_rebinds_to_new_subject(self):
        catalog = _fresh_catalog()
        a, b = Matrix("A", 10, 8), Matrix("B", 8, 6)
        c, d = Matrix("C", 10, 8), Matrix("D", 8, 6)
        first = catalog.match(Times(a, b))
        assert catalog.match_cache.misses >= 1
        second = catalog.match(Times(c, d))
        assert catalog.match_cache.hits >= 1
        assert [k.id for k, _ in first] == [k.id for k, _ in second]
        # The re-bound substitutions reference the *new* operands.
        for _, substitution in second:
            for value in substitution.values():
                assert value in (c, d)

    def test_cached_results_equal_uncached(self):
        catalog = _fresh_catalog()
        subjects = []
        for problem in _random_chains(10, seed=31):
            factors = list(problem.expression.children)
            for left, right in zip(factors, factors[1:]):
                subjects.append(Times(left, right))
        # Warm the cache, then compare every subject against the direct walk.
        for subject in subjects:
            catalog.match(subject)
        for subject in subjects:
            cached = catalog.match(subject)
            with match_caching_disabled():
                direct = catalog.match(subject)
            assert [(k.id, dict(s)) for k, s in cached] == [
                (k.id, dict(s)) for k, s in direct
            ]

    def test_nonlinear_pattern_not_served_to_nonrepeated_subject(self):
        catalog = _fresh_catalog()
        a = Matrix("A", 9, 4)
        b = Matrix("B", 9, 4)
        syrk = {k.display_name for k, _ in catalog.match(Times(a.T, a))}
        plain = {k.display_name for k, _ in catalog.match(Times(a.T, b))}
        assert "SYRK" in syrk
        assert "SYRK" not in plain

    def test_wildcard_subjects_are_not_cached(self):
        catalog = _fresh_catalog()
        subject = Times(Wildcard("x"), Matrix("B", 8, 6))
        catalog.match(subject)
        # A wildcard is not a concrete operand; no entry may be stored for it.
        assert len(catalog.match_cache) == 0


class TestMatchCacheInvalidation:
    def test_catalog_extension_is_not_served_stale_kernels(self):
        catalog = _fresh_catalog()
        c, b = Matrix("C", 8, 8), Matrix("B", 8, 8)
        subject = Times(c, b)
        catalog.match(subject)  # cache the kernel list for this signature
        pattern, _, _ = binary_pattern("N", "N")
        extra = Kernel(
            id="custom_mm",
            display_name="CUSTOMMM",
            pattern=Pattern(pattern, name="custom"),
            operands=("X", "Y"),
            cost=lambda s: 1.0,
            efficiency=0.9,
            runtime="gemm",
            julia_template="{out} = {X} * {Y}",
            numpy_template="{out} = {X} @ {Y}",
        )
        extended = catalog.extended([extra])
        names = {k.display_name for k, _ in extended.match(Times(c, b))}
        assert "CUSTOMMM" in names
        # The original catalog is immutable and unaffected.
        names = {k.display_name for k, _ in catalog.match(Times(c, b))}
        assert "CUSTOMMM" not in names

    def test_net_extension_flushes_by_version(self):
        catalog = _fresh_catalog()
        c, b = Matrix("C", 8, 8), Matrix("B", 8, 8)
        catalog.match(Times(c, b))
        assert len(catalog.match_cache) > 0
        pattern, _, _ = binary_pattern("N", "N")
        extra = Kernel(
            id="custom_mm2",
            display_name="CUSTOMMM2",
            pattern=Pattern(pattern, name="custom2"),
            operands=("X", "Y"),
            cost=lambda s: 1.0,
            efficiency=0.9,
            runtime="gemm",
            julia_template="{out} = {X} * {Y}",
            numpy_template="{out} = {X} @ {Y}",
        )
        # Mutating the underlying net directly (not via ``extended``) bumps
        # its version; the cache must flush rather than serve the old list.
        catalog._net.add(extra.pattern, extra)
        names = {k.display_name for k, _ in catalog.match(Times(c, b))}
        assert "CUSTOMMM2" in names

    def test_predicate_registry_mutation_never_serves_stale_kernels(self):
        catalog = _fresh_catalog()
        c, b = Matrix("C", 8, 8), Matrix("B", 8, 8)
        names = {k.display_name for k, _ in catalog.match(Times(c, b))}
        assert "TRMM" not in names  # C is not lower triangular
        try:
            PREDICATES[Property.LOWER_TRIANGULAR] = lambda expr: True
            names = {k.display_name for k, _ in catalog.match(Times(c, b))}
            assert "TRMM" in names
        finally:
            PREDICATES[Property.LOWER_TRIANGULAR] = is_lower_triangular
        names = {k.display_name for k, _ in catalog.match(Times(c, b))}
        assert "TRMM" not in names

    def test_opaque_constraints_bypass_the_cache(self):
        # A user constraint may observe what the signature abstracts away
        # (here: the operand *name*); such patterns must never be served
        # from cache.  Stock constraints are marked ``structural_predicate``
        # and stay cacheable.
        from repro.matching.patterns import Constraint

        pattern, _, _ = binary_pattern("N", "N")
        name_sensitive = Constraint(
            lambda substitution: substitution["X"].name == "A", "X is named A"
        )
        kernel = Kernel(
            id="named_mm",
            display_name="NAMEDMM",
            pattern=Pattern(pattern, constraints=[name_sensitive], name="named"),
            operands=("X", "Y"),
            cost=lambda s: 1.0,
            efficiency=0.9,
            runtime="gemm",
            julia_template="{out} = {X} * {Y}",
            numpy_template="{out} = {X} @ {Y}",
        )
        catalog = _fresh_catalog().extended([kernel])
        assert catalog._net.has_opaque_predicates
        a, c, b = Matrix("A", 8, 8), Matrix("C", 8, 8), Matrix("B", 8, 8)
        hit = {k.display_name for k, _ in catalog.match(Times(a, b))}
        miss = {k.display_name for k, _ in catalog.match(Times(c, b))}
        assert "NAMEDMM" in hit
        assert "NAMEDMM" not in miss
        # The stock catalog carries no opaque callables.
        assert not _fresh_catalog()._net.has_opaque_predicates

    def test_concrete_leaf_patterns_bypass_the_cache(self):
        anchor = Matrix("ANCHOR", 8, 8)
        pattern = Pattern(Times(anchor, Wildcard("Y")), name="anchored")
        kernel = Kernel(
            id="anchored_mm",
            display_name="ANCHORED",
            pattern=pattern,
            operands=("Y",),
            cost=lambda s: 1.0,
            efficiency=0.9,
            runtime="gemm",
            julia_template="{out} = {Y}",
            numpy_template="{out} = {Y}",
        )
        catalog = _fresh_catalog().extended([kernel])
        assert catalog._net.has_concrete_leaf_patterns
        b = Matrix("B", 8, 8)
        other = Matrix("OTHER", 8, 8)  # same signature as ANCHOR, different name
        hit = {k.display_name for k, _ in catalog.match(Times(anchor, b))}
        miss = {k.display_name for k, _ in catalog.match(Times(other, b))}
        assert "ANCHORED" in hit
        assert "ANCHORED" not in miss


class TestMatchCacheBounds:
    def test_lru_eviction_keeps_working_set(self):
        catalog = _fresh_catalog()
        cache = catalog.match_cache
        cache.max_entries = 8
        hot = Times(Matrix("H1", 3, 3), Matrix("H2", 3, 3))
        catalog.match(hot)
        for size in range(4, 40):
            catalog.match(Times(Matrix("A", size, size), Matrix("B", size, size)))
            catalog.match(hot)  # keep the hot signature recent
        assert len(cache) <= cache.max_entries
        hits_before = cache.hits
        catalog.match(Times(Matrix("X", 3, 3), Matrix("Y", 3, 3)))
        assert cache.hits == hits_before + 1  # hot entry survived the churn

    def test_hit_rate_reporting(self):
        catalog = _fresh_catalog()
        a, b = Matrix("A", 10, 8), Matrix("B", 8, 6)
        catalog.match(Times(a, b))
        catalog.match_cache.reset_stats()
        catalog.match(Times(Matrix("C", 10, 8), Matrix("D", 8, 6)))
        assert catalog.match_cache.hit_rate == pytest.approx(1.0)


class TestEndToEndEquivalence:
    """The acceptance property: cached + pruned solves must be identical to
    the uncached, unpruned reference path."""

    @pytest.mark.parametrize("seed", [11, 23, 57])
    def test_bottom_up_solutions_identical(self, seed):
        catalog = _fresh_catalog()
        fast = GMCAlgorithm(catalog=catalog)
        reference = GMCAlgorithm(catalog=catalog, prune=False)
        for problem in _random_chains(8, seed=seed):
            got = fast.solve(problem.expression)
            # Solve twice so the second pass runs against a warm cache.
            got_warm = fast.solve(problem.expression)
            with match_caching_disabled():
                want = reference.solve(problem.expression)
            assert got.computable == got_warm.computable == want.computable
            if want.computable:
                assert float(got.optimal_cost) == pytest.approx(float(want.optimal_cost))
                assert float(got_warm.optimal_cost) == pytest.approx(
                    float(want.optimal_cost)
                )
                assert got.parenthesization() == want.parenthesization()
                assert got_warm.parenthesization() == want.parenthesization()
                assert got.kernel_sequence() == want.kernel_sequence()

    def test_top_down_solutions_identical(self):
        catalog = _fresh_catalog()
        fast = TopDownGMC(catalog=catalog)
        reference = TopDownGMC(catalog=catalog, prune=False)
        for problem in _random_chains(8, seed=71):
            got = fast.solve(problem.expression)
            with match_caching_disabled():
                want = reference.solve(problem.expression)
            assert got.computable == want.computable
            if want.computable:
                assert float(got.optimal_cost) == pytest.approx(float(want.optimal_cost))
                assert got.parenthesization() == want.parenthesization()

    def test_uncomputable_chain_stays_uncomputable(self):
        catalog = _fresh_catalog(include_combined_inverse=False)
        a = Matrix("A", 8, 8, {Property.NON_SINGULAR})
        b = Matrix("B", 8, 8, {Property.NON_SINGULAR})
        solution = GMCAlgorithm(catalog=catalog).solve(a.I * b.I)
        assert not solution.computable
        assert math.isinf(solution.optimal_cost)
        # Dead cells materialize no temporary.
        assert solution.tmps[0][1] is None

    def test_repeated_solve_hits_the_cache(self):
        catalog = _fresh_catalog()
        algorithm = GMCAlgorithm(catalog=catalog)
        problem = _random_chains(1, seed=5, min_length=8, max_length=8)[0]
        algorithm.solve(problem.expression)
        catalog.match_cache.reset_stats()
        algorithm.solve(problem.expression)
        assert catalog.match_cache.hits > 0
        assert catalog.match_cache.hit_rate > 0.9


class TestDefaultCatalogNormalization:
    def test_call_shapes_share_one_catalog(self):
        assert default_catalog() is default_catalog(True, True)
        assert default_catalog() is default_catalog(include_combined_inverse=True)
        assert default_catalog() is default_catalog(
            include_combined_inverse=True, include_specialized=True
        )

    def test_distinct_configurations_stay_distinct(self):
        assert default_catalog() is not default_catalog(include_specialized=False)
        assert default_catalog(False, True) is default_catalog(
            include_combined_inverse=False
        )

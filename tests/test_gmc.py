"""Tests for the Generalized Matrix Chain algorithm (paper Section 3)."""

import math

import pytest

from repro.algebra import (
    Inverse,
    InverseTranspose,
    Matrix,
    Property,
    Temporary,
    Times,
    Transpose,
    Vector,
)
from repro.core import (
    GMCAlgorithm,
    MatrixChainDP,
    UncomputableChainError,
    generate_program,
    solve_chain,
)
from repro.cost import FlopCount, KernelCountMetric, PerformanceMetric
from repro.kernels import default_catalog, mcp_catalog


class TestEquivalenceWithClassicDP:
    """On plain chains (no unary operators, no properties) GMC must find
    exactly the classic matrix chain optimum (Section 2 vs. Section 3)."""

    def _chain(self, sizes):
        return Times(*[Matrix(f"M{i}", sizes[i], sizes[i + 1]) for i in range(len(sizes) - 1)])

    @pytest.mark.parametrize(
        "sizes",
        [
            [10, 100, 5, 50],
            [30, 35, 15, 5, 10, 20, 25],
            [130, 700, 383, 1340, 193, 900],
            [40, 20, 30, 10, 30],
            [5, 10, 3, 12, 5, 50, 6],
        ],
    )
    def test_same_optimal_flops_as_dp(self, sizes):
        dp = MatrixChainDP(sizes)
        solution = GMCAlgorithm(metric=FlopCount()).solve(self._chain(sizes))
        assert solution.optimal_cost == pytest.approx(dp.optimal_cost)

    @pytest.mark.parametrize("sizes", [[10, 100, 5, 50], [30, 35, 15, 5, 10, 20, 25]])
    def test_same_result_with_gemm_only_catalog(self, sizes):
        dp = MatrixChainDP(sizes)
        solution = GMCAlgorithm(catalog=mcp_catalog()).solve(self._chain(sizes))
        assert solution.optimal_cost == pytest.approx(dp.optimal_cost)

    def test_parenthesization_matches_dp_choice(self):
        sizes = [130, 700, 383, 1340, 193, 900]
        solution = GMCAlgorithm().solve(self._chain(sizes))
        assert solution.parenthesization() == "((((M0 * M1) * M2) * M3) * M4)"


class TestKernelSelection:
    def test_spd_solve_uses_posv(self):
        a = Matrix("A", 30, 30, {Property.SPD})
        b = Matrix("B", 30, 10)
        solution = GMCAlgorithm().solve(Times(Inverse(a), b))
        assert solution.kernel_sequence() == ["POSV"]

    def test_triangular_solve_uses_trsm(self):
        lower = Matrix("L", 30, 30, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        b = Matrix("B", 30, 10)
        solution = GMCAlgorithm().solve(Times(Inverse(lower), b))
        assert solution.kernel_sequence() == ["TRSM"]

    def test_general_solve_uses_gesv(self):
        a = Matrix("A", 30, 30, {Property.NON_SINGULAR})
        b = Matrix("B", 30, 10)
        solution = GMCAlgorithm().solve(Times(Inverse(a), b))
        assert solution.kernel_sequence() == ["GESV"]

    def test_right_side_solve(self):
        a = Matrix("A", 30, 30, {Property.SPD})
        b = Matrix("B", 10, 30)
        solution = GMCAlgorithm().solve(Times(b, Inverse(a)))
        assert solution.kernel_sequence() == ["POSV"]

    def test_diagonal_product_uses_diagmm(self):
        d = Matrix("D", 30, 30, {Property.DIAGONAL})
        b = Matrix("B", 30, 10)
        solution = GMCAlgorithm().solve(Times(d, b))
        assert solution.kernel_sequence() == ["DIAGMM"]

    def test_symmetric_product_uses_symm(self):
        s = Matrix("S", 30, 30, {Property.SYMMETRIC})
        b = Matrix("B", 30, 10)
        solution = GMCAlgorithm().solve(Times(s, b))
        assert solution.kernel_sequence() == ["SYMM"]

    def test_gram_product_uses_syrk(self):
        a = Matrix("A", 30, 20)
        solution = GMCAlgorithm().solve(Times(Transpose(a), a))
        assert solution.kernel_sequence() == ["SYRK"]

    def test_table2_example_kernel_sequence(self):
        """The GMC row of Table 2: A^-1 B C^T -> TRMM then POSV."""
        a = Matrix("A", 100, 100, {Property.SPD})
        b = Matrix("B", 100, 80)
        c = Matrix("C", 80, 80, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        solution = GMCAlgorithm().solve(Times(Inverse(a), b, Transpose(c)))
        assert solution.kernel_sequence() == ["TRMM", "POSV"]
        assert solution.parenthesization() == "(A^-1 * (B * C^T))"

    def test_matrix_vector_chain_is_right_associated(self):
        """M1 M2 v must be computed as M1 (M2 v) -- two GEMVs."""
        m1 = Matrix("M1", 100, 80)
        m2 = Matrix("M2", 80, 60)
        v = Vector("v", 60)
        solution = GMCAlgorithm().solve(Times(m1, m2, v))
        assert solution.kernel_sequence() == ["GEMV", "GEMV"]
        assert solution.parenthesization() == "(M1 * (M2 * v))"

    def test_vector_tail_chain_uses_outer_product_last(self):
        """The Section 4 tail case M1 M2 v1 v2^T: GEMVs then one GER."""
        m1 = Matrix("M1", 100, 80)
        m2 = Matrix("M2", 80, 60)
        v1 = Vector("v1", 60)
        v2 = Vector("v2", 50)
        solution = GMCAlgorithm().solve(Times(m1, m2, v1, Transpose(v2)))
        assert solution.kernel_sequence() == ["GEMV", "GEMV", "GER"]


class TestPropertyPropagation:
    def test_section32_example_uses_properties_for_parenthesization(self):
        """X := A^T A B (n=20, m=15): exploiting the symmetry/SPD-ness of
        A^T A changes the chosen parenthesization (Section 3.2)."""
        a = Matrix("A", 20, 20)
        b = Matrix("B", 20, 15)
        with_properties = GMCAlgorithm().solve(Times(Transpose(a), a, b))
        assert with_properties.parenthesization() == "((A^T * A) * B)"
        assert with_properties.total_flops == pytest.approx(14000)
        assert with_properties.kernel_sequence() == ["SYRK", "SYMM"]

    def test_section32_example_without_properties_prefers_right_first(self):
        a = Matrix("A", 20, 20)
        b = Matrix("B", 20, 15)
        generic = GMCAlgorithm(catalog=default_catalog(include_specialized=False)).solve(
            Times(Transpose(a), a, b)
        )
        assert generic.parenthesization() == "(A^T * (A * B))"
        assert generic.total_flops == pytest.approx(24000)

    def test_intermediate_temporaries_carry_inferred_properties(self):
        lower1 = Matrix("L1", 20, 20, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        lower2 = Matrix("L2", 20, 20, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        b = Matrix("B", 20, 10)
        solution = GMCAlgorithm().solve(Times(lower1, lower2, b))
        tmp = solution.tmps[0][1]
        assert isinstance(tmp, Temporary)
        assert Property.LOWER_TRIANGULAR in tmp.properties

    def test_triangular_chain_uses_trmm_throughout(self):
        lower1 = Matrix("L1", 20, 20, {Property.LOWER_TRIANGULAR})
        lower2 = Matrix("L2", 20, 20, {Property.LOWER_TRIANGULAR})
        b = Matrix("B", 20, 10)
        solution = GMCAlgorithm().solve(Times(lower1, lower2, b))
        assert set(solution.kernel_sequence()) == {"TRMM"}

    def test_kalman_style_chain_exploits_spd(self):
        xb = Matrix("Xb", 60, 30)
        s = Matrix("S", 30, 30, {Property.SPD})
        yb = Matrix("Yb", 50, 30)
        r = Matrix("R", 50, 50, {Property.SPD})
        solution = GMCAlgorithm().solve(Times(xb, s, Transpose(yb), Inverse(r)))
        assert "POSV" in solution.kernel_sequence()
        assert "SYMM" in solution.kernel_sequence()


class TestCompleteness:
    """The completeness behaviour of Section 3.4."""

    def test_chain_with_adjacent_inverses_is_solved_via_other_split(self):
        a = Matrix("A", 20, 20, {Property.NON_SINGULAR})
        b = Matrix("B", 20, 20, {Property.NON_SINGULAR})
        c = Matrix("C", 20, 10)
        catalog = default_catalog(include_combined_inverse=False)
        solution = GMCAlgorithm(catalog=catalog).solve(Times(Inverse(a), Inverse(b), c))
        assert solution.computable
        assert solution.parenthesization() == "(A^-1 * (B^-1 * C))"
        assert solution.kernel_sequence() == ["GESV", "GESV"]

    def test_two_factor_inverse_product_is_uncomputable_without_kernel(self):
        a = Matrix("A", 20, 20, {Property.NON_SINGULAR})
        b = Matrix("B", 20, 20, {Property.NON_SINGULAR})
        catalog = default_catalog(include_combined_inverse=False)
        solution = GMCAlgorithm(catalog=catalog).solve(Times(Inverse(a), Inverse(b)))
        assert not solution.computable
        assert solution.metric.is_infinite(solution.optimal_cost)
        with pytest.raises(UncomputableChainError):
            list(solution.construct_solution())

    def test_two_factor_inverse_product_with_combined_kernel(self):
        a = Matrix("A", 20, 20, {Property.NON_SINGULAR})
        b = Matrix("B", 20, 20, {Property.NON_SINGULAR})
        solution = GMCAlgorithm().solve(Times(Inverse(a), Inverse(b)))
        assert solution.computable
        assert solution.kernel_sequence() == ["GESV2"]

    def test_generate_raises_on_uncomputable_chain(self):
        a = Matrix("A", 20, 20, {Property.NON_SINGULAR})
        b = Matrix("B", 20, 20, {Property.NON_SINGULAR})
        catalog = default_catalog(include_combined_inverse=False)
        with pytest.raises(UncomputableChainError):
            GMCAlgorithm(catalog=catalog).generate(Times(Inverse(a), Inverse(b)))


class TestSolutionObject:
    def _solution(self):
        a = Matrix("A", 12, 12, {Property.SPD})
        b = Matrix("B", 12, 8)
        c = Matrix("C", 8, 8, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        return GMCAlgorithm().solve(Times(Inverse(a), b, Transpose(c)))

    def test_program_dependency_order(self):
        solution = self._solution()
        program = solution.program()
        produced = set()
        for call in program.calls:
            for operand in call.substitution.values():
                for leaf in operand.leaves():
                    if isinstance(leaf, Temporary):
                        assert leaf.name in produced
            produced.add(call.output.name)
        assert program.output.name in produced

    def test_total_flops_equals_sum_of_calls(self):
        solution = self._solution()
        program = solution.program()
        assert solution.total_flops == pytest.approx(program.total_flops)

    def test_optimal_cost_equals_total_flops_for_flop_metric(self):
        solution = self._solution()
        assert solution.optimal_cost == pytest.approx(solution.total_flops)

    def test_generation_time_recorded(self):
        solution = self._solution()
        assert solution.generation_time > 0.0

    def test_str_contains_key_information(self):
        text = str(self._solution())
        assert "metric" in text
        assert "parenthesization" in text

    def test_output_temporary_shape(self):
        solution = self._solution()
        assert solution.output.rows == 12
        assert solution.output.columns == 8

    def test_solution_length(self):
        assert self._solution().length == 3


class TestMetricsChangeSolutions:
    def test_kernel_count_metric_minimizes_calls(self):
        a = Matrix("A", 10, 20)
        b = Matrix("B", 20, 30)
        c = Matrix("C", 30, 5)
        solution = GMCAlgorithm(metric=KernelCountMetric()).solve(Times(a, b, c))
        assert solution.optimal_cost == 2.0

    def test_time_metric_produces_computable_solution(self):
        a = Matrix("A", 64, 64, {Property.SPD})
        b = Matrix("B", 64, 32)
        solution = GMCAlgorithm(metric=PerformanceMetric()).solve(Times(Inverse(a), b))
        assert solution.computable
        assert solution.optimal_cost > 0.0

    def test_string_metric_names_accepted(self):
        a = Matrix("A", 16, 8)
        b = Matrix("B", 8, 4)
        for metric in ("flops", "time", "memory", "accuracy", "kernels"):
            assert GMCAlgorithm(metric=metric).solve(Times(a, b)).computable


class TestInputHandling:
    def test_accepts_factor_sequences(self):
        a = Matrix("A", 10, 12)
        b = Matrix("B", 12, 6)
        solution = GMCAlgorithm().solve([a, b])
        assert solution.computable

    def test_accepts_nested_expressions(self):
        a = Matrix("A", 10, 10, {Property.NON_SINGULAR})
        b = Matrix("B", 10, 10, {Property.NON_SINGULAR})
        c = Matrix("C", 10, 4)
        # (A B)^-1 C must be normalized to B^-1 A^-1 C first.
        solution = GMCAlgorithm().solve(Times(Inverse(Times(a, b)), c))
        assert solution.computable
        assert solution.length == 3

    def test_rejects_non_expressions(self):
        with pytest.raises(TypeError):
            GMCAlgorithm().solve([Matrix("A", 3, 3), "B"])

    def test_single_factor_chain(self):
        a = Matrix("A", 5, 5)
        solution = GMCAlgorithm().solve([a])
        assert solution.optimal_cost == 0.0
        assert solution.program().calls == []

    def test_convenience_wrappers(self):
        a = Matrix("A", 10, 12)
        b = Matrix("B", 12, 6)
        assert solve_chain(Times(a, b)).computable
        assert len(generate_program(Times(a, b)).calls) == 1

    def test_inverse_transpose_factor(self):
        lower = Matrix("L", 12, 12, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        b = Matrix("B", 12, 6)
        solution = GMCAlgorithm().solve(Times(InverseTranspose(lower), b))
        assert solution.kernel_sequence() == ["TRSM"]


class TestGenerationTimeScaling:
    def test_generation_time_is_independent_of_matrix_size(self):
        """The DP cost depends on the chain length, not the operand sizes."""
        small = [Matrix(f"S{i}", 10, 10) for i in range(8)]
        large = [Matrix(f"L{i}", 2000, 2000) for i in range(8)]
        gmc = GMCAlgorithm()
        time_small = gmc.solve(Times(*small)).generation_time
        time_large = gmc.solve(Times(*large)).generation_time
        assert time_large < 50 * max(time_small, 1e-4)

    def test_chain_of_length_ten_is_fast(self):
        matrices = [Matrix(f"M{i}", 100 + i, 100 + i + 1) for i in range(10)]
        solution = GMCAlgorithm().solve(Times(*matrices))
        assert solution.generation_time < 1.0
        assert solution.computable


class TestSolutionCallMaterialization:
    """``program()``, ``total_flops`` and ``kernel_sequence()`` share one
    materialized call list instead of each re-running the Fig. 7 recursion."""

    def _solution(self):
        matrices = [Matrix(f"M{i}", 10 * (i + 1), 10 * (i + 2)) for i in range(5)]
        return GMCAlgorithm().solve(Times(*matrices))

    def test_kernel_calls_is_materialized_once(self):
        solution = self._solution()
        assert solution.kernel_calls() is solution.kernel_calls()

    def test_consumers_agree_with_the_generator(self):
        solution = self._solution()
        generated = list(solution.construct_solution())
        assert solution.kernel_sequence() == [
            call.kernel.display_name for call in generated
        ]
        assert solution.total_flops == pytest.approx(
            sum(call.flops for call in generated)
        )
        assert [call.kernel.id for call in solution.program()] == [
            call.kernel.id for call in generated
        ]

    def test_uncomputable_solution_still_raises(self):
        a = Matrix("A", 8, 8, {Property.NON_SINGULAR})
        b = Matrix("B", 8, 8, {Property.NON_SINGULAR})
        catalog = default_catalog(include_combined_inverse=False)
        solution = GMCAlgorithm(catalog=catalog).solve(Times(Inverse(a), Inverse(b)))
        with pytest.raises(UncomputableChainError):
            solution.kernel_calls()


class TestSplitPruning:
    """Lower-bound pruning must never change the chosen solution."""

    @pytest.mark.parametrize(
        "sizes",
        [
            [10, 100, 5, 50],
            [30, 35, 15, 5, 10, 20, 25],
            [130, 700, 383, 1340, 193, 900],
        ],
    )
    def test_pruned_equals_exhaustive(self, sizes):
        chain = Times(
            *[Matrix(f"M{i}", sizes[i], sizes[i + 1]) for i in range(len(sizes) - 1)]
        )
        pruned = GMCAlgorithm(prune=True).solve(chain)
        exhaustive = GMCAlgorithm(prune=False).solve(chain)
        assert float(pruned.optimal_cost) == pytest.approx(
            float(exhaustive.optimal_cost)
        )
        assert pruned.parenthesization() == exhaustive.parenthesization()
        assert pruned.kernel_sequence() == exhaustive.kernel_sequence()

"""Tests for the cost-metric framework (Section 3.3 of the paper)."""

import math

import pytest

from repro.algebra import Matrix, Property, Times, Inverse
from repro.cost import (
    AccuracyMetric,
    CustomMetric,
    DEFAULT_MACHINE,
    FlopCount,
    KernelCountMetric,
    MachineModel,
    MemoryMetric,
    PerformanceMetric,
    VectorMetric,
    WeightedSumMetric,
    resolve_metric,
)
from repro.kernels import default_catalog
from repro.matching import Substitution


def _gemm_case(m=100, k=80, n=60):
    catalog = default_catalog()
    kernel = catalog.by_id("gemm_nn")
    substitution = Substitution({"X": Matrix("A", m, k), "Y": Matrix("B", k, n)})
    return kernel, substitution


def _posv_case(n=100, nrhs=50):
    catalog = default_catalog()
    kernel = catalog.by_id("posv_l_in")
    substitution = Substitution(
        {"X": Matrix("A", n, n, {Property.SPD}), "Y": Matrix("B", n, nrhs)}
    )
    return kernel, substitution


class TestMachineModel:
    def test_compute_time(self):
        machine = MachineModel(peak_flops=1e9, bandwidth_bytes=1e9)
        assert machine.compute_time(1e9, efficiency=1.0) == pytest.approx(1.0)
        assert machine.compute_time(1e9, efficiency=0.5) == pytest.approx(2.0)

    def test_transfer_time(self):
        machine = MachineModel(peak_flops=1e9, bandwidth_bytes=8e9, word_bytes=8.0)
        assert machine.transfer_time(1e9) == pytest.approx(1.0)

    def test_zero_work_is_free(self):
        assert DEFAULT_MACHINE.compute_time(0.0, 0.5) == 0.0
        assert DEFAULT_MACHINE.transfer_time(0.0) == 0.0

    def test_machine_balance_positive(self):
        assert DEFAULT_MACHINE.machine_balance > 0


class TestFlopCount:
    def test_matches_kernel_flops(self):
        kernel, substitution = _gemm_case()
        assert FlopCount().kernel_cost(kernel, substitution) == kernel.flops(substitution)

    def test_zero_and_infinity(self):
        metric = FlopCount()
        assert metric.zero == 0.0
        assert metric.is_infinite(metric.infinity)
        assert not metric.is_infinite(1.0)

    def test_combine_is_addition(self):
        assert FlopCount().combine(2.0, 3.0) == 5.0


class TestPerformanceMetric:
    def test_time_is_positive(self):
        kernel, substitution = _gemm_case()
        assert PerformanceMetric().kernel_cost(kernel, substitution) > 0.0

    def test_gemm_beats_gemv_in_efficiency(self):
        """The same FLOPs cost more time on a memory-bound kernel."""
        catalog = default_catalog()
        metric = PerformanceMetric()
        gemm = catalog.by_id("gemm_nn")
        gemv = catalog.by_id("gemv_n")
        # 1000 x 1000 matrix times vector: same flops via either interface.
        substitution = Substitution({"X": Matrix("A", 1000, 1000), "Y": Matrix("v", 1000, 1)})
        assert metric.kernel_cost(gemv, substitution) >= metric.kernel_cost(gemm, substitution) * 0.99

    def test_memory_bound_operations_hit_the_roofline(self):
        """For a matrix-vector product the transfer term dominates."""
        machine = MachineModel(peak_flops=1e12, bandwidth_bytes=1e9)
        metric = PerformanceMetric(machine)
        catalog = default_catalog()
        gemv = catalog.by_id("gemv_n")
        substitution = Substitution({"X": Matrix("A", 2000, 2000), "Y": Matrix("v", 2000, 1)})
        cost = metric.kernel_cost(gemv, substitution)
        assert cost >= machine.transfer_time(2000 * 2000)

    def test_larger_problems_cost_more(self):
        metric = PerformanceMetric()
        small = _gemm_case(50, 50, 50)
        large = _gemm_case(500, 500, 500)
        assert metric.kernel_cost(*large) > metric.kernel_cost(*small)


class TestOtherMetrics:
    def test_memory_metric_counts_elements(self):
        kernel, substitution = _gemm_case(10, 20, 30)
        assert MemoryMetric().kernel_cost(kernel, substitution) == 10 * 20 + 20 * 30

    def test_accuracy_metric_penalizes_explicit_inversion(self):
        catalog = default_catalog()
        metric = AccuracyMetric()
        getri = catalog.by_id("getri")
        posv = catalog.by_id("posv_l_in")
        spd = Matrix("A", 100, 100, {Property.SPD})
        rhs = Matrix("B", 100, 10)
        inversion_cost = metric.kernel_cost(getri, Substitution({"X": spd}))
        solve_cost = metric.kernel_cost(posv, Substitution({"X": spd, "Y": rhs}))
        assert inversion_cost > solve_cost

    def test_kernel_count_metric(self):
        kernel, substitution = _gemm_case()
        assert KernelCountMetric().kernel_cost(kernel, substitution) == 1.0

    def test_weighted_sum(self):
        kernel, substitution = _gemm_case()
        combined = WeightedSumMetric([(FlopCount(), 1.0), (KernelCountMetric(), 10.0)])
        expected = kernel.flops(substitution) + 10.0
        assert combined.kernel_cost(kernel, substitution) == pytest.approx(expected)

    def test_weighted_sum_requires_components(self):
        with pytest.raises(ValueError):
            WeightedSumMetric([])

    def test_custom_metric(self):
        kernel, substitution = _gemm_case()
        metric = CustomMetric(lambda k, s: 42.0, name="answer")
        assert metric.kernel_cost(kernel, substitution) == 42.0
        assert metric.name == "answer"


class TestVectorMetric:
    def test_costs_are_tuples(self):
        kernel, substitution = _gemm_case()
        metric = VectorMetric([FlopCount(), KernelCountMetric()])
        cost = metric.kernel_cost(kernel, substitution)
        assert cost == (kernel.flops(substitution), 1.0)

    def test_lexicographic_comparison(self):
        metric = VectorMetric([FlopCount(), KernelCountMetric()])
        assert (10.0, 2.0) < (10.0, 3.0)
        assert (9.0, 5.0) < (10.0, 0.0)
        assert metric.zero == (0.0, 0.0)

    def test_combine_is_componentwise(self):
        metric = VectorMetric([FlopCount(), KernelCountMetric()])
        assert metric.combine((1.0, 2.0), (3.0, 4.0)) == (4.0, 6.0)

    def test_infinity_detection(self):
        metric = VectorMetric([FlopCount(), KernelCountMetric()])
        assert metric.is_infinite(metric.infinity)
        assert metric.is_infinite((math.inf, 0.0))
        assert not metric.is_infinite((1.0, 2.0))

    def test_requires_components(self):
        with pytest.raises(ValueError):
            VectorMetric([])

    def test_usable_in_gmc(self):
        """A (FLOPs, accuracy) vector metric drives the GMC algorithm."""
        from repro.core import GMCAlgorithm

        a = Matrix("A", 20, 20, {Property.SPD})
        b = Matrix("B", 20, 10)
        metric = VectorMetric([FlopCount(), AccuracyMetric()])
        solution = GMCAlgorithm(metric=metric).solve(Times(Inverse(a), b))
        assert solution.computable
        assert isinstance(solution.optimal_cost, tuple)


class TestResolveMetric:
    def test_none_gives_flops(self):
        assert isinstance(resolve_metric(None), FlopCount)

    def test_instances_pass_through(self):
        metric = PerformanceMetric()
        assert resolve_metric(metric) is metric

    def test_string_names(self):
        assert isinstance(resolve_metric("flops"), FlopCount)
        assert isinstance(resolve_metric("time"), PerformanceMetric)
        assert isinstance(resolve_metric("memory"), MemoryMetric)
        assert isinstance(resolve_metric("accuracy"), AccuracyMetric)
        assert isinstance(resolve_metric("kernels"), KernelCountMetric)

    def test_unknown_string_raises(self):
        with pytest.raises(ValueError):
            resolve_metric("speed-of-light")

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            resolve_metric(42)


class TestKernelCostCacheLRU:
    """The kernel-cost memo is a bounded LRU: overflow evicts only the
    coldest entry, so a long-running service's working set survives (the
    previous wholesale ``clear()`` at capacity did not)."""

    def _counting_metric(self, bound):
        evaluations = []

        class Counting(FlopCount):
            def kernel_cost(self, kernel, substitution):
                evaluations.append(substitution)
                return super().kernel_cost(kernel, substitution)

        metric = Counting()
        metric.cost_cache_size = bound
        return metric, evaluations

    def _substitution(self, index):
        return Substitution(
            {"X": Matrix(f"A{index}", 10 + index, 8), "Y": Matrix(f"B{index}", 8, 6)}
        )

    def test_working_set_survives_overflow(self):
        metric, evaluations = self._counting_metric(bound=16)
        kernel, hot = _gemm_case()
        metric.kernel_cost_cached(kernel, hot)
        for index in range(100):
            metric.kernel_cost_cached(kernel, self._substitution(index))
            metric.kernel_cost_cached(kernel, hot)  # keep the hot entry recent
        evaluations_so_far = len(evaluations)
        metric.kernel_cost_cached(kernel, hot)
        assert len(evaluations) == evaluations_so_far  # still cached
        assert len(metric._cost_cache) <= 16

    def test_cold_entries_are_evicted_individually(self):
        metric, evaluations = self._counting_metric(bound=4)
        kernel, _ = _gemm_case()
        for index in range(10):
            metric.kernel_cost_cached(kernel, self._substitution(index))
        assert len(metric._cost_cache) <= 4
        # The oldest entry is gone and must be re-evaluated...
        before = len(evaluations)
        metric.kernel_cost_cached(kernel, self._substitution(0))
        assert len(evaluations) == before + 1
        # ...while the newest one is still warm.
        before = len(evaluations)
        metric.kernel_cost_cached(kernel, self._substitution(9))
        assert len(evaluations) == before

    def test_uncacheable_metric_never_builds_a_cache(self):
        metric = CustomMetric(lambda kernel, substitution: 1.0)
        kernel, substitution = _gemm_case()
        metric.kernel_cost_cached(kernel, substitution)
        assert not hasattr(metric, "_cost_cache")

"""Tests for the expression leaves: Matrix, Vector, Identity, Zero, Temporary."""

import pytest

from repro.algebra import (
    IdentityMatrix,
    Matrix,
    Property,
    ShapeError,
    Temporary,
    Vector,
    ZeroMatrix,
)


class TestMatrixConstruction:
    def test_basic_shape(self):
        a = Matrix("A", 3, 4)
        assert a.rows == 3
        assert a.columns == 4
        assert a.shape == (3, 4)

    def test_name_required(self):
        with pytest.raises(ValueError):
            Matrix("", 3, 3)

    def test_positive_dimensions_required(self):
        with pytest.raises(ShapeError):
            Matrix("A", 0, 3)
        with pytest.raises(ShapeError):
            Matrix("A", 3, -1)

    def test_square_property_added_automatically(self):
        assert Property.SQUARE in Matrix("A", 5, 5).properties

    def test_vector_property_added_automatically(self):
        assert Property.VECTOR in Matrix("v", 5, 1).properties
        assert Property.VECTOR in Matrix("v", 1, 5).properties

    def test_scalar_property_added_automatically(self):
        assert Property.SCALAR in Matrix("s", 1, 1).properties

    def test_non_square_has_no_square_property(self):
        assert Property.SQUARE not in Matrix("A", 5, 4).properties

    def test_properties_are_closed(self):
        a = Matrix("A", 5, 5, {Property.SPD})
        assert Property.SYMMETRIC in a.properties
        assert Property.NON_SINGULAR in a.properties

    def test_square_only_property_on_rectangular_raises(self):
        with pytest.raises(ShapeError):
            Matrix("A", 5, 4, {Property.SYMMETRIC})

    def test_spd_on_rectangular_raises(self):
        with pytest.raises(ShapeError):
            Matrix("A", 5, 4, {Property.SPD})

    def test_immutable(self):
        a = Matrix("A", 3, 3)
        with pytest.raises(AttributeError):
            a.name = "B"

    def test_has_property(self):
        a = Matrix("A", 3, 3, {Property.DIAGONAL})
        assert a.has_property(Property.DIAGONAL)
        assert a.has_property(Property.LOWER_TRIANGULAR)
        assert not a.has_property(Property.SPD)

    def test_with_properties_returns_new_matrix(self):
        a = Matrix("A", 3, 3)
        b = a.with_properties(Property.SYMMETRIC)
        assert Property.SYMMETRIC in b.properties
        assert Property.SYMMETRIC not in a.properties
        assert b.name == a.name

    def test_str_is_name(self):
        assert str(Matrix("Sigma", 3, 3)) == "Sigma"


class TestEqualityAndHashing:
    def test_equal_matrices(self):
        assert Matrix("A", 3, 4) == Matrix("A", 3, 4)

    def test_different_names_not_equal(self):
        assert Matrix("A", 3, 4) != Matrix("B", 3, 4)

    def test_different_shapes_not_equal(self):
        assert Matrix("A", 3, 4) != Matrix("A", 4, 3)

    def test_different_properties_not_equal(self):
        assert Matrix("A", 3, 3, {Property.SPD}) != Matrix("A", 3, 3)

    def test_hash_consistency(self):
        assert hash(Matrix("A", 3, 4)) == hash(Matrix("A", 3, 4))

    def test_usable_in_sets(self):
        matrices = {Matrix("A", 3, 4), Matrix("A", 3, 4), Matrix("B", 3, 4)}
        assert len(matrices) == 2

    def test_matrix_not_equal_to_non_expression(self):
        assert Matrix("A", 3, 3) != "A"


class TestShapePredicates:
    def test_is_square(self):
        assert Matrix("A", 3, 3).is_square
        assert not Matrix("A", 3, 4).is_square

    def test_is_vector(self):
        assert Matrix("v", 5, 1).is_vector
        assert Matrix("v", 1, 5).is_vector
        assert not Matrix("A", 5, 5).is_vector
        assert not Matrix("s", 1, 1).is_vector

    def test_is_column_vector(self):
        assert Matrix("v", 5, 1).is_column_vector
        assert not Matrix("v", 1, 5).is_column_vector

    def test_is_row_vector(self):
        assert Matrix("v", 1, 5).is_row_vector
        assert not Matrix("v", 5, 1).is_row_vector

    def test_is_scalar_shaped(self):
        assert Matrix("s", 1, 1).is_scalar_shaped
        assert not Matrix("v", 5, 1).is_scalar_shaped

    def test_leaf_navigation(self):
        a = Matrix("A", 3, 3)
        assert a.is_leaf
        assert list(a.preorder()) == [a]
        assert list(a.leaves()) == [a]
        assert a.size == 1
        assert a.depth == 1


class TestVector:
    def test_vector_is_column_matrix(self):
        v = Vector("v", 7)
        assert v.rows == 7
        assert v.columns == 1
        assert v.length == 7
        assert Property.VECTOR in v.properties

    def test_vector_is_matrix_subclass(self):
        assert isinstance(Vector("v", 7), Matrix)


class TestSpecialMatrices:
    def test_identity(self):
        identity = IdentityMatrix(4)
        assert identity.rows == identity.columns == 4
        assert Property.IDENTITY in identity.properties
        assert Property.SPD in identity.properties

    def test_zero(self):
        zero = ZeroMatrix(3, 5)
        assert Property.ZERO in zero.properties
        assert zero.shape == (3, 5)

    def test_square_zero_is_symmetric(self):
        assert Property.SYMMETRIC in ZeroMatrix(4, 4).properties


class TestTemporary:
    def test_unique_names(self):
        Temporary.reset_counter()
        t1 = Temporary(3, 4)
        t2 = Temporary(3, 4)
        assert t1.name != t2.name

    def test_reset_counter(self):
        Temporary.reset_counter()
        t = Temporary(2, 2)
        assert t.name == "T1"

    def test_origin_is_recorded(self):
        a = Matrix("A", 3, 3)
        t = Temporary(3, 3, origin=a)
        assert t.origin is a

    def test_carries_properties(self):
        t = Temporary(3, 3, properties={Property.SPD})
        assert Property.SPD in t.properties
        assert Property.SYMMETRIC in t.properties

    def test_explicit_name(self):
        t = Temporary(3, 3, name="W")
        assert t.name == "W"

"""Differential tests: single-pass memoized inference vs. legacy predicates.

The memoized engine (:class:`repro.algebra.inference.PropertyInference`)
re-implements the Fig. 6 predicate recursion as one fused bottom-up pass.
These tests pin the two paths together: on randomly generated generalized
chains (and every node of their trees) the inferred property sets must be
*identical*, and the GMC algorithm must produce identical solutions under
either path.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.algebra import (
    Matrix,
    Property,
    Times,
    clear_inference_cache,
    has_property,
    has_property_legacy,
    infer_properties,
    infer_properties_legacy,
    inference_engine,
    intern,
    legacy_inference,
)
from repro.algebra.inference import PREDICATES, PropertyInference
from repro.core import GMCAlgorithm, TopDownGMC
from repro.experiments.workload import ChainGenerator
from test_property_based import generalized_chains

_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestPropertySetEquivalence:
    @given(generalized_chains())
    @_SETTINGS
    def test_every_node_matches_legacy_inference(self, expression):
        for node in expression.preorder():
            assert infer_properties(node) == infer_properties_legacy(node), str(node)

    @given(generalized_chains())
    @_SETTINGS
    def test_has_property_matches_legacy_for_all_properties(self, expression):
        for node in expression.preorder():
            for prop in Property:
                assert has_property(node, prop) == has_property_legacy(node, prop), (
                    str(node),
                    prop,
                )

    @given(generalized_chains())
    @_SETTINGS
    def test_memoized_engine_is_stable_across_repeats(self, expression):
        first = infer_properties(expression)
        again = infer_properties(expression)
        assert first == again
        assert infer_properties(intern(expression)) == first

    def test_workload_chains_match_legacy(self):
        generator = ChainGenerator(
            min_length=3, max_length=10, size_choices=(4, 6, 9), seed=13
        )
        for problem in generator.generate_many(25):
            for node in problem.expression.preorder():
                assert infer_properties(node) == infer_properties_legacy(node)

    def test_engine_memoizes_shared_subtrees(self):
        engine = PropertyInference()
        a = Matrix("A", 4, 4, {Property.SPD})
        b = Matrix("B", 4, 4, {Property.LOWER_TRIANGULAR})
        chain = Times(a, b, a)
        engine.raw_properties(chain)
        misses = engine.misses
        engine.raw_properties(chain)
        assert engine.misses == misses  # second call is a pure cache hit
        assert engine.hits > 0

    def test_registered_predicate_is_respected(self):
        # Register an extra predicate under a property that has no fused
        # bottom-up rule: the engine must detect the registry mutation and
        # honour the predicate without any manual cache clearing.
        marker = Property.VECTOR
        assert marker not in PREDICATES
        weird = Matrix("weird", 3, 3)
        before = infer_properties(weird)  # populate the memo first
        assert marker not in before
        PREDICATES[marker] = lambda expr: isinstance(expr, Matrix) and expr.name == "weird"
        try:
            assert marker in infer_properties_legacy(weird)
            assert infer_properties(weird) == infer_properties_legacy(weird)
        finally:
            del PREDICATES[marker]
        assert infer_properties(weird) == before

    def test_replacing_builtin_predicate_is_honoured(self):
        # Replacing a built-in predicate must override the fused rules (and
        # the leaf fast path) on the default inference path.
        lower = Matrix("L", 4, 4, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        product = Times(lower, lower)
        assert Property.LOWER_TRIANGULAR in infer_properties(product)
        original = PREDICATES[Property.LOWER_TRIANGULAR]
        PREDICATES[Property.LOWER_TRIANGULAR] = lambda expr: False
        try:
            assert infer_properties(product) == infer_properties_legacy(product)
            assert Property.LOWER_TRIANGULAR not in infer_properties(product)
            assert not has_property(product, Property.LOWER_TRIANGULAR)
            assert not has_property(lower, Property.LOWER_TRIANGULAR)
        finally:
            PREDICATES[Property.LOWER_TRIANGULAR] = original
        assert Property.LOWER_TRIANGULAR in infer_properties(product)


class TestSolverEquivalence:
    @given(generalized_chains())
    @_SETTINGS
    def test_gmc_solution_identical_under_both_paths(self, expression):
        fast = GMCAlgorithm().solve(expression)
        with legacy_inference():
            legacy = GMCAlgorithm().solve(expression)
        assert fast.computable == legacy.computable
        if legacy.computable:
            assert fast.optimal_cost == pytest.approx(legacy.optimal_cost)
            assert fast.parenthesization() == legacy.parenthesization()
            assert fast.kernel_sequence() == legacy.kernel_sequence()

    @given(generalized_chains())
    @_SETTINGS
    def test_topdown_solution_identical_under_both_paths(self, expression):
        fast = TopDownGMC().solve(expression)
        with legacy_inference():
            legacy = TopDownGMC().solve(expression)
        assert fast.computable == legacy.computable
        if legacy.computable:
            assert fast.optimal_cost == pytest.approx(legacy.optimal_cost)
            assert fast.parenthesization() == legacy.parenthesization()

    def test_inferred_temporary_properties_identical(self):
        a = Matrix("A", 6, 6, {Property.SPD})
        b = Matrix("B", 6, 6, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
        c = Matrix("C", 6, 6, {Property.DIAGONAL, Property.NON_SINGULAR})
        chain = Times(a.I, b, c)
        fast = GMCAlgorithm().solve(chain)
        with legacy_inference():
            legacy = GMCAlgorithm().solve(chain)
        n = fast.length
        for i in range(n):
            for j in range(i + 1, n):
                fast_tmp = fast.tmps[i][j]
                legacy_tmp = legacy.tmps[i][j]
                if fast_tmp is None or legacy_tmp is None:
                    assert fast_tmp is None and legacy_tmp is None
                else:
                    assert fast_tmp.properties == legacy_tmp.properties, (i, j)


class TestMatcherEquivalence:
    """The optimized acceptance path (grouped entries, precomputed slot
    metadata, wildcard-edge pruning) must report exactly the same matches as
    the reference binding path kept from the original implementation."""

    @given(generalized_chains())
    @_SETTINGS
    def test_catalog_matches_identical_under_both_binding_paths(self, expression):
        from repro.kernels import default_catalog
        from repro.matching import legacy_binding

        catalog = default_catalog()
        factors = list(expression.children)
        subjects = [expression] + [
            Times(left, right)
            for left, right in zip(factors, factors[1:])
        ]
        for subject in subjects:
            fast = {
                (kernel.id, substitution)
                for kernel, substitution in catalog.match(subject)
            }
            with legacy_binding():
                reference = {
                    (kernel.id, substitution)
                    for kernel, substitution in catalog.match(subject)
                }
            assert fast == reference, str(subject)

    @given(generalized_chains())
    @_SETTINGS
    def test_gmc_solution_identical_under_legacy_binding(self, expression):
        from repro.matching import legacy_binding

        fast = GMCAlgorithm().solve(expression)
        with legacy_binding():
            reference = GMCAlgorithm().solve(expression)
        assert fast.computable == reference.computable
        if reference.computable:
            assert fast.optimal_cost == pytest.approx(reference.optimal_cost)
            assert fast.parenthesization() == reference.parenthesization()
            assert fast.kernel_sequence() == reference.kernel_sequence()


def test_default_engine_is_exposed():
    engine = inference_engine()
    assert isinstance(engine, PropertyInference)

"""Tests for expression normalization into canonical chain form."""

import pytest

from repro.algebra import (
    IdentityMatrix,
    Inverse,
    InverseTranspose,
    Matrix,
    NormalizationError,
    Plus,
    Property,
    Times,
    Transpose,
    as_chain,
    is_chain_factor,
    normalize,
    unary_decomposition,
    wrap_leaf,
)
from repro.algebra.simplify import invert, transpose

A = Matrix("A", 4, 4, {Property.NON_SINGULAR})
B = Matrix("B", 4, 4, {Property.NON_SINGULAR})
C = Matrix("C", 4, 6)
S = Matrix("S", 4, 4, {Property.SYMMETRIC})
D = Matrix("D", 4, 4, {Property.DIAGONAL})


class TestTransposeRewrites:
    def test_double_transpose_cancels(self):
        assert normalize(Transpose(Transpose(A))) == A

    def test_transpose_of_product_reverses(self):
        assert normalize(Transpose(Times(A, C))) == Times(Transpose(C), Transpose(A))

    def test_transpose_of_inverse_becomes_inverse_transpose(self):
        assert normalize(Transpose(Inverse(A))) == InverseTranspose(A)

    def test_transpose_of_symmetric_leaf_is_dropped(self):
        assert normalize(Transpose(S)) == S

    def test_transpose_of_diagonal_leaf_is_dropped(self):
        assert normalize(Transpose(D)) == D

    def test_transpose_of_sum(self):
        assert normalize(Transpose(Plus(A, B))) == Plus(Transpose(A), Transpose(B))

    def test_transpose_helper_on_plain_leaf(self):
        assert transpose(C) == Transpose(C)


class TestInverseRewrites:
    def test_double_inverse_cancels(self):
        assert normalize(Inverse(Inverse(A))) == A

    def test_inverse_of_transpose_becomes_inverse_transpose(self):
        assert normalize(Inverse(Transpose(A))) == InverseTranspose(A)

    def test_inverse_of_product_reverses(self):
        assert normalize(Inverse(Times(A, B))) == Times(Inverse(B), Inverse(A))

    def test_inverse_transpose_of_transpose(self):
        assert normalize(InverseTranspose(Transpose(A))) == Inverse(A)

    def test_inverse_transpose_of_symmetric_becomes_inverse(self):
        assert normalize(InverseTranspose(S)) == Inverse(S)

    def test_invert_helper(self):
        assert invert(Inverse(A)) == A


class TestProductNormalization:
    def test_nested_products_flatten(self):
        expr = Times(Times(A, B), Times(A, C))
        assert normalize(expr).children == (A, B, A, C)

    def test_identity_factors_are_dropped(self):
        identity = IdentityMatrix(4)
        assert normalize(Times(A, identity, C)) == Times(A, C)

    def test_identity_only_product_keeps_factors(self):
        identity = IdentityMatrix(4)
        normalized = normalize(Times(identity, identity))
        assert normalized.shape == (4, 4)

    def test_single_remaining_factor_after_identity_removal(self):
        identity = IdentityMatrix(4)
        assert normalize(Times(identity, C)) == C

    def test_mixed_unary_normalization(self):
        expr = Transpose(Times(Inverse(A), C))
        normalized = normalize(expr)
        assert normalized == Times(Transpose(C), InverseTranspose(A))


class TestAsChain:
    def test_plain_chain(self):
        assert as_chain(Times(A, B, C)) == (A, B, C)

    def test_chain_with_wrapped_factors(self):
        factors = as_chain(Times(Inverse(A), C))
        assert factors == (Inverse(A), C)

    def test_nested_expression_is_normalized_first(self):
        factors = as_chain(Transpose(Times(A, C)))
        assert factors == (Transpose(C), Transpose(A))

    def test_single_matrix(self):
        assert as_chain(A) == (A,)

    def test_sum_raises(self):
        with pytest.raises(NormalizationError):
            as_chain(Plus(A, B))

    def test_factor_with_inner_sum_raises(self):
        with pytest.raises(NormalizationError):
            as_chain(Times(Plus(A, B), C))


class TestFactorHelpers:
    def test_is_chain_factor(self):
        assert is_chain_factor(A)
        assert is_chain_factor(Transpose(A))
        assert is_chain_factor(Inverse(A))
        assert is_chain_factor(InverseTranspose(A))
        assert not is_chain_factor(Times(A, B))
        assert not is_chain_factor(Transpose(Times(A, B)))

    def test_unary_decomposition_plain(self):
        assert unary_decomposition(A) == (A, False, False)

    def test_unary_decomposition_transpose(self):
        assert unary_decomposition(Transpose(A)) == (A, True, False)

    def test_unary_decomposition_inverse(self):
        assert unary_decomposition(Inverse(A)) == (A, False, True)

    def test_unary_decomposition_inverse_transpose(self):
        assert unary_decomposition(InverseTranspose(A)) == (A, True, True)

    def test_unary_decomposition_rejects_compound(self):
        with pytest.raises(NormalizationError):
            unary_decomposition(Times(A, B))

    def test_wrap_leaf_roundtrip(self):
        for transposed in (False, True):
            for inverted in (False, True):
                wrapped = wrap_leaf(A, transposed, inverted)
                assert unary_decomposition(wrapped) == (A, transposed, inverted)


class TestNormalizationIdempotence:
    def test_normalize_is_idempotent_on_examples(self):
        examples = [
            Times(A, B, C),
            Transpose(Times(A, C)),
            Inverse(Times(A, B)),
            Times(Inverse(A), C),
            InverseTranspose(Transpose(A)),
        ]
        for expr in examples:
            once = normalize(expr)
            assert normalize(once) == once

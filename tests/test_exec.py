"""The execution tier: module emitter, loader, execute path, service wiring.

Covers the ``module`` emitter (standalone importable modules, no ``repro``
at run time), the module loader/cache, the seeded operand environments,
:func:`repro.exec.api.run_execute_request` happy and error paths (including
emitted-vs-interpreted identity across the solver x metric matrix), and the
``POST /execute`` endpoint with its metrics/telemetry side channels.
"""

from __future__ import annotations

import json
import subprocess
import sys
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.algebra import Matrix, Property
from repro.codegen import available_emitters, get_emitter
from repro.exec import (
    ModuleLoader,
    ModuleRunError,
    default_loader,
    execution_telemetry,
    generate_module,
    plan_signature,
)
from repro.exec.api import ExecuteRequest, ExecuteResponse, run_execute_request
from repro.frontend.compiler import Compiler, main as cli_main
from repro.runtime import execute_program, random_environment
from repro.runtime.reference import evaluate as reference_evaluate
from repro.service.api import CompileRequest, RequestError
from repro.service.http import start_server
from repro.service.pool import InProcessExecutor, WorkerPool
from repro import telemetry

CHAIN_SOURCE = """Matrix A (30, 30) <spd>
Matrix B (30, 20) <>
Matrix C (20, 20) <lower_triangular, non_singular>
X := A^-1 * B * C^T
"""

DAG_SOURCE = """Matrix A (12, 15) <>
Matrix B (15, 18) <>
Matrix C (18, 12) <>
Y := A * B
Z := Y * C * A
"""


def _compile(source: str, **options):
    from repro.options import CompileOptions

    return Compiler(CompileOptions(**options)).compile(source)


def _request(source: str = CHAIN_SOURCE, **execute_fields) -> ExecuteRequest:
    return ExecuteRequest(compile=CompileRequest(source=source), **execute_fields)


# ---------------------------------------------------------------------------
# The module emitter
# ---------------------------------------------------------------------------

class TestModuleEmitter:
    def test_registered_as_stitched_emitter(self):
        assert "module" in available_emitters()
        assert get_emitter("module").stitched

    def test_emitted_source_is_standalone(self):
        source = _compile(CHAIN_SOURCE).emit("module")
        assert "import repro" not in source
        assert "from repro" not in source
        for constant in ("ENTRYPOINT", "ARGUMENTS", "RESULT", "OPERANDS",
                         "IMPLEMENTATION", "NUMBA_IMPLEMENTATION"):
            assert constant in source

    def test_emit_module_renders_the_whole_dag_once(self):
        result = _compile(DAG_SOURCE)
        assert result.emit("module") == result.emit_stitched("module")

    def test_module_matches_reference_in_process(self):
        result = _compile(CHAIN_SOURCE)
        source = result.emit("module")
        namespace: dict = {}
        exec(compile(source, "<module>", "exec"), namespace)
        environment = random_environment(result, seed=11)
        value = namespace[namespace["ENTRYPOINT"]](
            **{name: environment[name] for name in namespace["ARGUMENTS"]}
        )
        expected = reference_evaluate(
            result.assignments[-1].expression, environment
        )
        np.testing.assert_allclose(value, expected, rtol=1e-9, atol=1e-11)

    def test_module_runs_in_fresh_process_without_repro(self, tmp_path):
        result = _compile(CHAIN_SOURCE)
        (tmp_path / "emitted.py").write_text(result.emit("module"))
        probe = tmp_path / "probe.py"
        probe.write_text(
            "import sys\n"
            "import numpy as np\n"
            "import importlib.util\n"
            "spec = importlib.util.spec_from_file_location('emitted', "
            f"{str(tmp_path / 'emitted.py')!r})\n"
            "mod = importlib.util.module_from_spec(spec)\n"
            "spec.loader.exec_module(mod)\n"
            "assert 'repro' not in sys.modules\n"
            "rng = np.random.default_rng(0)\n"
            "A = rng.standard_normal((30, 30)); A = A @ A.T + 30 * np.eye(30)\n"
            "B = rng.standard_normal((30, 20))\n"
            "C = np.tril(rng.standard_normal((20, 20))) + 20 * np.eye(20)\n"
            "value = getattr(mod, mod.ENTRYPOINT)(A=A, B=B, C=C)\n"
            "expected = np.linalg.inv(A) @ B @ C.T\n"
            "assert np.allclose(value, expected, rtol=1e-8, atol=1e-10)\n"
            "assert mod.RESULT == 'X'\n"
            "print('STANDALONE_OK', mod.IMPLEMENTATION)\n"
        )
        # No repo paths in the child: the emitted module must carry
        # everything it needs.
        completed = subprocess.run(
            [sys.executable, str(probe)],
            capture_output=True,
            text=True,
            cwd=tmp_path,
            env={"PATH": "/usr/bin:/bin", "HOME": str(tmp_path)},
        )
        assert completed.returncode == 0, completed.stderr
        assert "STANDALONE_OK" in completed.stdout

    def test_alias_program_module(self):
        result = _compile("Matrix A (6, 6) <>\nX := A\n")
        source = result.emit("module")
        namespace: dict = {}
        exec(compile(source, "<module>", "exec"), namespace)
        value = np.arange(36.0).reshape(6, 6)
        np.testing.assert_array_equal(
            namespace[namespace["ENTRYPOINT"]](A=value), value
        )

    def test_numba_gracefully_absent(self):
        # The container has no numba: the probe block must degrade.
        source = _compile(CHAIN_SOURCE).emit("module")
        namespace: dict = {}
        exec(compile(source, "<module>", "exec"), namespace)
        assert namespace["NUMBA_IMPLEMENTATION"] is None
        assert namespace["IMPLEMENTATION"] == "numpy"


class TestPlanSignature:
    def test_stable_across_recompiles(self):
        first = plan_signature(_compile(CHAIN_SOURCE))
        second = plan_signature(_compile(CHAIN_SOURCE))
        assert first == second

    def test_sensitive_to_dimensions(self):
        grown = CHAIN_SOURCE.replace("(30, 20)", "(30, 25)").replace(
            "(20, 20)", "(25, 25)"
        )
        assert plan_signature(_compile(CHAIN_SOURCE)) != plan_signature(
            _compile(grown)
        )

    def test_accepts_bare_program(self):
        program = _compile(CHAIN_SOURCE).stitched_program()
        assert isinstance(plan_signature(program), str)


# ---------------------------------------------------------------------------
# The module loader
# ---------------------------------------------------------------------------

class TestModuleLoader:
    def test_load_lookup_and_stats(self):
        loader = ModuleLoader(max_entries=4)
        result = _compile(CHAIN_SOURCE)
        key = plan_signature(result)
        assert loader.lookup(key) is None
        loaded = loader.load(result.emit("module"), key)
        assert loader.lookup(key) is loaded
        stats = loader.stats()
        assert stats["size"] == 1 and stats["hits"] == 1 and stats["misses"] == 1
        loader.clear()

    def test_eviction_respects_lru_order(self):
        loader = ModuleLoader(max_entries=2)
        sources = [
            _compile(f"Matrix A ({n}, {n}) <spd>\nMatrix B ({n}, 4) <>\nX := A^-1 * B\n")
            for n in (5, 6, 7)
        ]
        keys = [plan_signature(result) for result in sources]
        for result, key in zip(sources, keys):
            loader.load(result.emit("module"), key)
        assert loader.lookup(keys[0]) is None  # evicted
        assert loader.lookup(keys[2]) is not None
        assert loader.stats()["evictions"] == 1
        loader.clear()

    def test_run_reports_missing_operands(self):
        loader = ModuleLoader()
        result = _compile(CHAIN_SOURCE)
        loaded = loader.load(result.emit("module"), plan_signature(result))
        with pytest.raises(ModuleRunError, match="missing operand"):
            loaded.run({"A": np.eye(30)})
        loader.clear()

    def test_broken_source_is_not_cached(self):
        loader = ModuleLoader()
        with pytest.raises(Exception):
            loader.load("raise RuntimeError('boom')\n", "broken-key")
        assert loader.lookup("broken-key") is None
        loader.clear()


# ---------------------------------------------------------------------------
# Seeded operand environments
# ---------------------------------------------------------------------------

class TestRandomEnvironment:
    def test_deterministic_per_seed(self):
        result = _compile(CHAIN_SOURCE)
        first = random_environment(result, seed=9)
        second = random_environment(result, seed=9)
        other = random_environment(result, seed=10)
        for name in first:
            np.testing.assert_array_equal(first[name], second[name])
        assert any(not np.array_equal(first[n], other[n]) for n in first)

    def test_respects_declared_properties(self):
        environment = random_environment(_compile(CHAIN_SOURCE), seed=0)
        A, C = environment["A"], environment["C"]
        np.testing.assert_allclose(A, A.T)
        assert np.all(np.linalg.eigvalsh(A) > 0)
        np.testing.assert_array_equal(C, np.tril(C))

    def test_overrides_and_errors(self):
        result = _compile(CHAIN_SOURCE)
        override = np.eye(30)
        environment = random_environment(result, seed=0, overrides={"A": override})
        np.testing.assert_array_equal(environment["A"], override)
        with pytest.raises(ValueError, match="does not match"):
            random_environment(result, overrides={"A": np.eye(3)})
        with pytest.raises(ValueError, match="undeclared"):
            random_environment(result, overrides={"Q": np.eye(3)})

    def test_accepts_expression_and_mapping(self):
        a = Matrix("A", 5, 5, {Property.SPD})
        env = random_environment({"A": a}, seed=1)
        assert env["A"].shape == (5, 5)


# ---------------------------------------------------------------------------
# run_execute_request
# ---------------------------------------------------------------------------

class TestRunExecuteRequest:
    def test_chain_executes_and_validates(self):
        response = run_execute_request(_request(seed=4))
        assert response.ok and response.validated
        assert response.implementation == "numpy"
        assert response.max_rel_error < 1e-8
        summary = response.results[0]
        assert summary["target"] == "X"
        assert (summary["rows"], summary["columns"]) == (30, 20)
        assert {"compile_s", "emit_s", "import_s", "run_s", "validate_s",
                "total_s"} <= set(response.timing)

    def test_repeat_execution_hits_module_cache(self):
        request = _request(seed=4)
        run_execute_request(request)
        response = run_execute_request(request)
        assert response.ok and response.module_cache_hit
        assert response.timing["emit_s"] == 0.0

    @pytest.mark.parametrize("solver", ["gmc", "topdown"])
    @pytest.mark.parametrize("metric", ["flops", "time"])
    @pytest.mark.parametrize("source", [CHAIN_SOURCE, DAG_SOURCE])
    def test_module_matches_interpreter_across_matrix(self, solver, metric, source):
        request = ExecuteRequest.from_dict(
            {
                "source": source,
                "options": {"solver": solver, "metric": metric},
                "execute": {"engine": "both", "seed": 2},
            }
        )
        response = run_execute_request(request)
        assert response.ok, response.error
        assert response.engines_match and response.validated

    def test_transposed_solve_kernels_render_correctly(self):
        # Kalman-style DAG whose plan uses solve kernels with transposed
        # right-hand sides (e.g. posv_l_it, sysv_r_ti).  Regression test for
        # the numpy templates dropping the rhs transpose code, which made the
        # emitted module diverge from (or crash where) the interpreter ran.
        source = (
            "Matrix Hk (50, 90) <full_rank>\n"
            "Matrix Pk (90, 90) <spd>\n"
            "Matrix Bk (50, 40) <full_rank>\n"
            "G := Hk * Pk * Hk^T\n"
            "J := G^-1 * Bk\n"
            "K := Pk * Hk^T * (Hk * Pk^-1 * Hk^T)^-1\n"
        )
        request = ExecuteRequest.from_dict(
            {"source": source, "execute": {"engine": "both", "seed": 3}}
        )
        response = run_execute_request(request)
        assert response.ok, response.error
        assert response.engines_match and response.validated
        assert response.max_rel_error < 1e-8

    def test_interpreter_engine(self):
        response = run_execute_request(_request(engine="interpreter"))
        assert response.ok and response.implementation == "interpreter"
        assert response.validated

    def test_explicit_payloads_validate(self):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((30, 30))
        A = A @ A.T + 30 * np.eye(30)
        B = rng.standard_normal((30, 20))
        C = np.tril(rng.standard_normal((20, 20))) + 20 * np.eye(20)
        response = run_execute_request(
            _request(payloads={"A": A, "B": B, "C": C})
        )
        assert response.ok and response.validated
        expected = np.linalg.inv(A) @ B @ C.T
        assert np.isclose(response.results[0]["fro_norm"], np.linalg.norm(expected))

    def test_compile_failure_reports_phase(self):
        response = run_execute_request(_request(source="Matrix A (2, 2 <>\n"))
        assert not response.ok and response.phase == "compile"

    def test_payload_shape_error_reports_operands_phase(self):
        response = run_execute_request(_request(payloads={"A": np.eye(3)}))
        assert not response.ok and response.phase == "operands"
        assert "does not match" in response.error

    def test_singular_operand_fails_in_run_phase(self):
        before = execution_telemetry().stats()["run_errors"]
        response = run_execute_request(
            _request(payloads={"A": np.zeros((30, 30))})
        )
        assert not response.ok and response.phase == "run"
        assert execution_telemetry().stats()["run_errors"] == before + 1

    def test_validation_failure_counts_and_reports(self):
        class _LyingModule:
            implementation = "numpy"

            def run(self, environment):
                return np.zeros((30, 20))

        class _LyingLoader:
            def lookup(self, key):
                return _LyingModule()

        before = execution_telemetry().stats()["validation_failures"]
        response = run_execute_request(_request(seed=1), loader=_LyingLoader())
        assert not response.ok and response.phase == "validate"
        assert response.validated is False
        assert response.max_rel_error > 1e-6
        assert "diverges from the reference" in response.error
        assert execution_telemetry().stats()["validation_failures"] == before + 1

    def test_validation_can_be_disabled(self):
        response = run_execute_request(_request(validate_numerics=False))
        assert response.ok and response.validated is None


class TestExecuteWire:
    def test_round_trip_with_payloads(self):
        request = _request(seed=7, rtol=1e-5, payloads={"A": np.eye(30)})
        restored = ExecuteRequest.from_dict(request.to_dict())
        assert restored.seed == 7 and restored.rtol == 1e-5
        np.testing.assert_array_equal(
            np.asarray(restored.payloads["A"]), np.eye(30)
        )

    def test_unknown_execute_field_rejected(self):
        with pytest.raises(RequestError, match="unknown execute fields"):
            ExecuteRequest.from_dict(
                {"source": CHAIN_SOURCE, "execute": {"bogus": 1}}
            )

    def test_unknown_engine_rejected(self):
        with pytest.raises(RequestError, match="unknown engine"):
            ExecuteRequest.from_dict(
                {"source": CHAIN_SOURCE, "execute": {"engine": "quantum"}}
            )

    def test_module_emit_target_legal_on_compile_wire(self):
        request = CompileRequest.from_dict(
            {"source": CHAIN_SOURCE, "options": {"emit": ["module"]}}
        )
        with InProcessExecutor() as executor:
            response = executor.submit(request)
        assert response.ok
        code = response.assignments[-1].code["module"]
        assert "ENTRYPOINT" in code and "import repro" not in code

    def test_response_round_trip(self):
        response = run_execute_request(_request(seed=4))
        restored = ExecuteResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))
        )
        assert restored.ok == response.ok
        assert restored.results == response.results
        assert restored.timing == response.timing


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------

class TestExecutionTelemetry:
    def test_execution_layer_in_snapshot(self):
        assert "execution" in telemetry.CACHE_LAYERS
        layer = telemetry.snapshot()["execution"]
        assert layer["layer"] == "execution"
        for key in ("runs", "run_errors", "validation_failures", "hits", "misses"):
            assert key in layer

    def test_runs_counted_and_aggregated(self):
        before = telemetry.snapshot()["execution"]["runs"]
        run_execute_request(_request(seed=4))
        snap = telemetry.snapshot()
        assert snap["execution"]["runs"] == before + 1
        pooled = telemetry.aggregate([snap, snap])
        assert pooled["execution"]["runs"] == 2 * (before + 1)


# ---------------------------------------------------------------------------
# Service executors and HTTP endpoint
# ---------------------------------------------------------------------------

class TestExecutorExecute:
    def test_in_process_execute(self):
        with InProcessExecutor() as executor:
            response = executor.execute(_request(seed=4))
            assert response.ok and response.validated
            assert executor.requests_served == 1

    def test_worker_pool_execute(self):
        with WorkerPool(workers=2, request_timeout=120.0) as pool:
            first = pool.execute(_request(seed=4))
            assert first.ok and first.validated
            assert first.worker in (0, 1)
            second = pool.execute(_request(seed=4))
            assert second.ok and second.module_cache_hit
            assert pool._request_load == [0, 0]


@pytest.fixture(scope="class")
def exec_service():
    executor = InProcessExecutor()
    server, thread = start_server(executor, port=0)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base
    server.shutdown()
    thread.join(timeout=5.0)
    executor.close()


def _post(url, payload, headers=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class TestExecuteEndpoint:
    def test_execute_returns_validated_result(self, exec_service):
        status, body, headers = _post(
            f"{exec_service}/execute",
            {"source": CHAIN_SOURCE, "execute": {"seed": 4}},
            headers={"X-Request-Id": "exec-test-1"},
        )
        assert status == 200 and body["ok"] and body["validated"]
        assert body["request_id"] == "exec-test-1"
        assert headers["X-Request-Id"] == "exec-test-1"
        assert body["results"][0]["target"] == "X"

    def test_execute_dag_program(self, exec_service):
        status, body, _ = _post(
            f"{exec_service}/execute",
            {"source": DAG_SOURCE, "execute": {"engine": "both"}},
        )
        assert status == 200 and body["ok"]
        assert body["engines_match"] and body["results"][0]["target"] == "Z"

    def test_execute_malformed_body_is_400(self, exec_service):
        status, body, _ = _post(
            f"{exec_service}/execute",
            {"source": CHAIN_SOURCE, "execute": {"engine": "quantum"}},
        )
        assert status == 400 and "unknown engine" in body["error"]

    def test_execute_run_failure_is_400_with_phase(self, exec_service):
        status, body, _ = _post(
            f"{exec_service}/execute",
            {
                "source": CHAIN_SOURCE,
                "execute": {"payloads": {"A": np.zeros((30, 30)).tolist()}},
            },
        )
        assert status == 400 and not body["ok"]
        assert body["phase"] == "run"

    def test_metrics_exposition_has_execution_series(self, exec_service):
        _post(f"{exec_service}/execute", {"source": CHAIN_SOURCE, "execute": {}})
        with urllib.request.urlopen(f"{exec_service}/metrics", timeout=30) as resp:
            text = resp.read().decode("utf-8")
        assert "repro_execute_phase_seconds" in text
        assert 'phase="run"' in text
        assert "repro_execute_validation_failures" in text
        assert 'layer="execution"' in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCLIExecute:
    def test_cli_execute_reports_and_succeeds(self, tmp_path, capsys):
        path = tmp_path / "problem.chain"
        path.write_text(CHAIN_SOURCE)
        assert cli_main([str(path), "--execute", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "execution:" in out
        assert "validated against reference" in out

    def test_cli_execute_rejected_with_serve(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            cli_main(["--serve", "--execute"])
        assert "--execute" in capsys.readouterr().err

"""Tests for intra-solve parallelism (``CompileOptions.parallelism``).

The parallel tier (:mod:`repro.core.parallel`) re-evaluates each
anti-diagonal of the DP table as a work queue of independent cell tasks.
Its contract is *bit-identity*: for every solver, metric and pruning
policy, the parallel backend must return exactly the serial reference
tier's costs, kernel sequences and parenthesizations.  These tests pin
that contract across the identity matrix the issue prescribes, plus the
deadline, plan-cache, CLI and telemetry integrations.
"""

import random

import pytest

from repro.algebra import Matrix, Property
from repro.core.gmc import GMCAlgorithm
from repro.core.parallel import (
    DeadlineChecker,
    SharedBound,
    parse_parallelism,
    resolve_worker_count,
    set_worker_parallelism_cap,
    solver_work_telemetry,
    worker_parallelism_cap,
)
from repro.core.topdown import TopDownGMC
from repro.cost import FlopCount, KernelCountMetric, WeightedSumMetric
from repro.options import CompileOptions
from repro.persist.plan_cache import plan_fingerprint

pytestmark = pytest.mark.parallel

SOLVERS = {"gmc": GMCAlgorithm, "topdown": TopDownGMC}

#: Realistic palette: chain operands share dimensions, so signature-keyed
#: layers (match cache, decision memo) see repeats, exactly like the
#: application chains of the paper's test set.
PALETTE = (40, 60, 80, 100)

SQUARE_PROPS = (Property.LOWER_TRIANGULAR, Property.DIAGONAL, Property.SYMMETRIC)


def make_chain(seed, length, palette=PALETTE):
    """A random conformable chain with occasional properties/transposes."""
    rng = random.Random(seed)
    dims = [rng.choice(palette) for _ in range(length + 1)]
    factors = []
    for index in range(length):
        properties = set()
        if dims[index] == dims[index + 1] and rng.random() < 0.3:
            properties = {rng.choice(SQUARE_PROPS)}
        factor = Matrix(f"M{index}", dims[index], dims[index + 1], properties)
        if factor.rows == factor.columns and rng.random() < 0.2:
            factor = factor.T
        factors.append(factor)
    return factors


def solve(solver, chain, parallelism, *, prune=True, metric="flops"):
    options = CompileOptions(
        solver=solver,
        metric=metric,
        prune=prune,
        parallelism=parallelism,
        plan_cache=False,
    )
    return SOLVERS[solver](options).solve(list(chain))


def fingerprint(solution):
    """Everything the identity contract covers, as one comparable value."""
    if not solution.computable:
        return (solution.optimal_cost, None, None)
    return (
        solution.optimal_cost,
        solution.kernel_sequence(),
        solution.parenthesization(),
    )


def weighted_metric():
    return WeightedSumMetric([(FlopCount(), 1.0), (KernelCountMetric(), 10.0)])


class TestSerialParallelIdentity:
    """The issue's identity matrix: solvers x pruning x metrics x lengths."""

    @pytest.mark.parametrize("solver", ["gmc", "topdown"])
    @pytest.mark.parametrize("prune", [True, False])
    @pytest.mark.parametrize("metric_kind", ["flops", "weighted"])
    @pytest.mark.parametrize("length", [3, 12, 24])
    def test_parallel_matches_serial(self, solver, prune, metric_kind, length):
        chain = make_chain(seed=(hash((solver, prune, length)) & 0xFFFF), length=length)
        metric = "flops" if metric_kind == "flops" else weighted_metric()
        serial = solve(solver, chain, "serial", prune=prune, metric=metric)
        parallel = solve(solver, chain, "threads:2", prune=prune, metric=metric)
        assert serial.computable
        assert fingerprint(parallel) == fingerprint(serial)
        assert serial.complete and parallel.complete

    @pytest.mark.parametrize("solver", ["gmc", "topdown"])
    def test_match_cache_off_still_identical(self, solver):
        """Without the match cache the decision memo is bypassed too; the
        raw-picker parallel path must still reproduce the serial result."""
        chain = make_chain(seed=11, length=10)
        options = dict(prune=True, metric="flops")
        serial = SOLVERS[solver](
            CompileOptions(
                solver=solver, parallelism="serial", match_cache=False,
                plan_cache=False, **options,
            )
        ).solve(list(chain))
        parallel = SOLVERS[solver](
            CompileOptions(
                solver=solver, parallelism="threads:2", match_cache=False,
                plan_cache=False, **options,
            )
        ).solve(list(chain))
        assert fingerprint(parallel) == fingerprint(serial)


class TestDeadlineUnderParallelBackend:
    @pytest.mark.parametrize("solver", ["gmc", "topdown"])
    def test_expired_deadline_truncates_cleanly(self, solver):
        chain = make_chain(seed=3, length=16)
        options = CompileOptions(
            solver=solver,
            parallelism="threads:2",
            deadline_s=1e-9,
            plan_cache=False,
        )
        solution = SOLVERS[solver](options).solve(list(chain))
        assert solution.complete is False

    @pytest.mark.parametrize("solver", ["gmc", "topdown"])
    def test_roomy_deadline_completes(self, solver):
        chain = make_chain(seed=4, length=8)
        options = CompileOptions(
            solver=solver,
            parallelism="threads:2",
            deadline_s=60.0,
            plan_cache=False,
        )
        solution = SOLVERS[solver](options).solve(list(chain))
        assert solution.complete is True
        assert fingerprint(solution) == fingerprint(solve(solver, chain, "serial"))


class TestPolicyParsing:
    def test_valid_policies(self):
        assert parse_parallelism("serial") == ("serial", 1)
        assert parse_parallelism("threads:4") == ("threads", 4)
        mode, _ = parse_parallelism("auto")
        assert mode == "auto"

    @pytest.mark.parametrize("bad", ["threads:0", "threads:-1", "threads:", "bogus", "THREADS:2"])
    def test_invalid_policies_raise(self, bad):
        with pytest.raises(ValueError):
            parse_parallelism(bad)

    def test_non_string_policy_raises(self):
        with pytest.raises(TypeError):
            parse_parallelism(4)

    def test_options_validate_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            CompileOptions(parallelism="bogus")

    def test_wire_roundtrip(self):
        options = CompileOptions(parallelism="threads:2")
        assert CompileOptions.from_wire(options.to_wire()).parallelism == "threads:2"
        # The default stays off the wire (sparse payloads, old servers).
        assert "parallelism" not in CompileOptions().to_wire()


class TestWorkerCap:
    def test_cap_bounds_threads_and_auto(self):
        try:
            set_worker_parallelism_cap(1)
            assert worker_parallelism_cap() == 1
            assert resolve_worker_count("threads:8") == 1
            assert resolve_worker_count("auto") == 1
        finally:
            set_worker_parallelism_cap(None)
        assert worker_parallelism_cap() is None
        assert resolve_worker_count("threads:8") == 8

    def test_serial_always_one(self):
        assert resolve_worker_count("serial") == 1

    def test_pool_divides_cores_between_workers(self):
        import os

        from repro.service.pool import WorkerPool

        pool = WorkerPool(workers=2)
        try:
            cores = os.cpu_count() or 1
            assert pool.worker_parallelism_cap == max(1, cores // 2)
        finally:
            pool.close()


class TestPlanCacheInteraction:
    def test_parallelism_is_not_in_the_fingerprint(self):
        serial = plan_fingerprint(CompileOptions(parallelism="serial"))
        threaded = plan_fingerprint(CompileOptions(parallelism="threads:4"))
        assert serial == threaded

    def test_serial_solve_warms_parallel_session(self):
        from repro.frontend.compiler import Compiler
        from repro.kernels import KernelCatalog, build_default_kernels

        source = (
            "Matrix A (120, 120) <spd>\n"
            "Matrix B (120, 60) <>\n"
            "Matrix C (60, 60) <lower_triangular, non_singular>\n"
            "X := A^-1 * B * C^T\n"
        )
        catalog = KernelCatalog(build_default_kernels(), name="parallel-plan-test")
        session = Compiler(CompileOptions(catalog=catalog))
        session.compile(source)
        assert session.plan_cache.stores == 1
        session.compile(source, parallelism="threads:2")
        assert session.plan_cache.hits == 1


class TestWorkTelemetry:
    def test_gmc_counts_cells_and_diagonals(self):
        n = 9
        solution = solve("gmc", make_chain(seed=6, length=n), "serial")
        assert solution.diagonals == n - 1
        assert solution.cells_evaluated == n * (n - 1) // 2

    def test_parallel_counts_match_serial(self):
        chain = make_chain(seed=7, length=10)
        serial = solve("gmc", chain, "serial")
        parallel = solve("gmc", chain, "threads:2")
        assert parallel.diagonals == serial.diagonals
        assert parallel.cells_evaluated == serial.cells_evaluated

    def test_pruning_is_observable(self):
        solution = solve("gmc", make_chain(seed=8, length=12), "serial", prune=True)
        assert solution.cells_pruned > 0
        unpruned = solve("gmc", make_chain(seed=8, length=12), "serial", prune=False)
        assert unpruned.cells_pruned == 0

    def test_solver_layer_in_telemetry_snapshot(self):
        from repro import telemetry

        before = telemetry.snapshot()["solver"]
        solution = solve("gmc", make_chain(seed=9, length=6), "serial")
        after = telemetry.snapshot()["solver"]
        assert after["solves"] >= before["solves"] + 1
        assert after["cells_evaluated"] >= before["cells_evaluated"] + solution.cells_evaluated
        assert {"hits", "misses", "hit_rate"} <= set(after)

    def test_decision_memo_hits_surface_in_telemetry(self):
        from repro import telemetry

        before = telemetry.snapshot()["solver"]
        solve("gmc", make_chain(seed=10, length=12), "threads:2")
        after = telemetry.snapshot()["solver"]
        # Palette dims repeat, so the memo must have both missed (first
        # sighting of each split signature) and hit (every repeat).
        assert after["misses"] > before["misses"]
        assert after["hits"] > before["hits"]


class TestPrimitives:
    def test_shared_bound_keeps_lexicographic_minimum(self):
        bound = SharedBound()
        assert bound.offer(10.0, 3, "a")
        assert not bound.offer(10.0, 5, "b")  # same cost, later split loses
        assert bound.offer(10.0, 1, "c")  # same cost, earlier split wins
        assert bound.offer(4.0, 7, "d")
        cost, split, payload = bound.get()
        assert (cost, split, payload) == (4.0, 7, "d")

    def test_deadline_checker_none_never_expires(self):
        checker = DeadlineChecker(None)
        assert checker.deadline is None
        assert not checker.expired()

    def test_deadline_checker_expiry_is_sticky(self):
        checker = DeadlineChecker(0.0)
        assert checker.expired()
        assert checker.expired()


class TestCommandLine:
    def _report(self, *arguments, tmp_path):
        import contextlib
        import io

        from repro.frontend import main

        path = tmp_path / "problem.chain"
        path.write_text(
            "Matrix A (200, 200) <SPD>\n"
            "Matrix B (200, 100) <>\n"
            "Matrix C (100, 100) <LowerTriangular, NonSingular>\n"
            "X := A^-1 * B * C^T\n",
            encoding="utf-8",
        )
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = main([str(path), *arguments])
        assert status == 0
        return buffer.getvalue()

    def test_parallel_flag_matches_serial_report(self, tmp_path):
        serial = self._report(tmp_path=tmp_path)
        parallel = self._report("--parallel", "threads:2", tmp_path=tmp_path)
        pick = lambda report: [
            line for line in report.splitlines() if "kernels:" in line or "total cost" in line
        ]
        assert pick(parallel) == pick(serial)

    def test_bad_policy_is_a_usage_error(self, capsys):
        from repro.frontend import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--parallel", "threads:zero"])
        assert excinfo.value.code == 2
        assert "threads:zero" in capsys.readouterr().err

    def test_serve_mode_rejects_parallel_flag(self, capsys):
        from repro.frontend import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--serve", "--parallel", "threads:2", "--port", "0"])
        assert excinfo.value.code == 2
        assert "--parallel" in capsys.readouterr().err

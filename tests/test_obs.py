"""Tests for the observability layer (repro.obs): tracing, metrics, logs.

Covers the PR 8 acceptance criteria:

* ``GET /metrics`` returns well-formed Prometheus text exposition carrying
  all seven cache-telemetry layers and the per-endpoint latency histograms
  (with monotone cumulative buckets ending in ``le="+Inf"``);
* request ids propagate: header -> request wire -> pool worker -> response
  body -> echoed ``X-Request-Id`` header;
* a traced multi-segment DAG compile yields a span tree with per-segment
  provenance, per-diagonal DP phases and a Chrome trace-event export.
"""

from __future__ import annotations

import io
import json
import logging
import re
import urllib.request

import pytest

from repro.frontend import compile_source
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    JsonFormatter,
    MetricsRegistry,
    Tracer,
    explain_result,
    get_logger,
    provenance_of,
    render_prometheus,
    reset_service_metrics,
)
from repro.obs.metrics import format_value, sanitize_metric_name
from repro.options import CompileOptions
from repro.service import CompileRequest, InProcessExecutor, WorkerPool
from repro.service.http import start_server
from repro.telemetry import CACHE_LAYERS

#: A multi-assignment program that decomposes into several chain segments
#: (a shared chain, a dependent chain referencing an earlier target, and a
#: non-chain synthetic subtree), exercising per-segment spans.
DAG_SOURCE = """
Matrix A (120, 120) <spd>
Matrix B (120, 80) <>
Matrix C (80, 80) <lower_triangular, non_singular>
Matrix D (80, 40) <>
Y := A^-1 * B * C^T
Z := Y * D
"""

#: Prometheus text-exposition line shapes (version 0.0.4): comments,
#: ``name value`` and ``name{labels} value``.
_EXPO_LINE = re.compile(
    r"^(#( (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*)?"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE\.\+\-]+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+|-)?(Inf|NaN))$"
)


def assert_well_formed_exposition(text: str) -> None:
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.rstrip("\n").splitlines():
        assert _EXPO_LINE.match(line), f"malformed exposition line: {line!r}"


# ---------------------------------------------------------------------------
# Tracer / span tree
# ---------------------------------------------------------------------------

class TestTracer:
    def test_spans_nest_via_begin_end(self):
        tracer = Tracer()
        tracer.begin("outer", kind="test")
        tracer.begin("inner")
        tracer.end(cells=3)
        tracer.end()
        (outer,) = tracer.finish()
        assert outer.name == "outer" and outer.attrs["kind"] == "test"
        (inner,) = outer.children
        assert inner.name == "inner" and inner.attrs["cells"] == 3
        assert 0.0 <= inner.start <= inner.end <= outer.end

    def test_span_context_manager_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("phase"):
                tracer.begin("leftover")
                raise RuntimeError("boom")
        assert tracer.current() is None
        (root,) = tracer.roots
        assert root.end is not None and root.children[0].end is not None

    def test_add_phase_marks_aggregates(self):
        tracer = Tracer()
        with tracer.span("diagonal") as parent:
            tracer.add_phase(parent, "kernel_matching", parent.start, 0.001)
        (phase,) = tracer.find("kernel_matching")
        assert phase.attrs["aggregated"] is True
        assert phase.duration == pytest.approx(0.001)

    def test_json_and_chrome_exports(self, tmp_path):
        tracer = Tracer()
        with tracer.span("compile", solver="gmc"):
            with tracer.span("segment", target="X"):
                pass
        payload = tracer.to_json()
        assert payload["format"] == "repro-trace" and payload["unit"] == "seconds"
        # Round-trips through json.dumps (everything is JSON-safe).
        json.dumps(payload)
        events = tracer.to_chrome_trace()
        assert [event["name"] for event in events] == ["compile", "segment"]
        for event in events:
            assert event["ph"] == "X" and event["pid"] == 1 and event["tid"] == 1
            assert event["dur"] >= 0.0 and event["ts"] >= 0.0
        raw = tmp_path / "trace.json"
        chrome = tmp_path / "trace.chrome.json"
        tracer.write(str(raw), fmt="json")
        tracer.write(str(chrome), fmt="chrome")
        assert json.loads(raw.read_text())["spans"]
        assert json.loads(chrome.read_text())["traceEvents"]
        with pytest.raises(ValueError):
            tracer.write(str(raw), fmt="bogus")


# ---------------------------------------------------------------------------
# Metrics primitives
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_cumulative_buckets_are_monotone(self):
        histogram = Histogram()
        for value in (0.00005, 0.0003, 0.0003, 0.07, 3.0, 100.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        counts = [count for _, count in snap["buckets"]]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        bounds = [bound for bound, _ in snap["buckets"]]
        assert bounds == sorted(bounds)
        # The 100.0 observation lands only in the +Inf overflow bucket.
        assert snap["count"] == 6 and counts[-1] == 5
        assert snap["sum"] == pytest.approx(103.07065)

    def test_default_buckets_cover_latency_decades(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-4
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0

    def test_rejects_empty_and_duplicate_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(0.1, 0.1))


class TestRegistryAndExposition:
    def test_registry_renders_histogram_triple(self):
        registry = MetricsRegistry()
        registry.histogram(
            "repro_request_latency_seconds",
            help_text="latency",
            endpoint="/compile",
            method="POST",
        ).observe(0.02)
        text = "\n".join(registry.render()) + "\n"
        assert_well_formed_exposition(text)
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert re.search(
            r'repro_request_latency_seconds_count\{endpoint="/compile",method="POST"\} 1',
            text,
        )

    def test_render_prometheus_layers_and_gauges(self):
        layers = {
            "plan_cache": {"hits": 3, "misses": 1, "hit_rate": 0.75},
            "workers": 2,  # scalar entries render as standalone gauges
        }
        text = render_prometheus(
            cache_layers=layers, extra_gauges={"pool_requests": 7}
        )
        assert_well_formed_exposition(text)
        assert 'repro_hits{layer="plan_cache"} 3' in text
        assert "repro_workers 2" in text
        assert "repro_pool_requests 7" in text

    def test_name_and_value_formatting(self):
        assert sanitize_metric_name("hit rate%") == "hit_rate_"
        assert format_value(3.0) == "3"
        assert format_value(0.75) == "0.75"
        assert format_value(float("inf")) == "+Inf"


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------

class TestLogging:
    def test_json_formatter_emits_parseable_lines_with_extras(self):
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonFormatter())
        logger = logging.getLogger("repro.test.obs")
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
        try:
            logger.info(
                "worker crashed, restarted transparently",
                extra={"worker": 1, "exitcode": -9, "request_id": "abc123"},
            )
        finally:
            logger.removeHandler(handler)
        record = json.loads(stream.getvalue())
        assert record["event"] == "worker crashed, restarted transparently"
        assert record["level"] == "info"
        assert record["worker"] == 1 and record["request_id"] == "abc123"
        assert isinstance(record["ts"], float)

    def test_get_logger_lives_under_repro_namespace(self):
        assert get_logger("service.pool").name == "repro.service.pool"


# ---------------------------------------------------------------------------
# Traced compilation (tentpole end-to-end)
# ---------------------------------------------------------------------------

class TestTracedCompile:
    def test_multi_segment_trace_has_phases_and_provenance(self):
        result = compile_source(DAG_SOURCE, options=CompileOptions(trace=True))
        trace = result.trace
        assert trace is not None
        (root,) = trace.roots
        assert root.name == "compile" and root.end is not None
        # Pipeline phases under the compile root.
        assert trace.find("parse") and trace.find("decompose")
        segments = trace.find("segment")
        assert len(segments) == len(result.assignments) >= 2
        targets = {span.attrs["target"] for span in segments}
        assert {"Y", "Z"} <= targets
        for span in segments:
            assert span.attrs["provenance"] in {"cold_dp", "plan_cache", "trivial"}
            assert span.end is not None
        # Cold solves carry solve -> dp_fill -> diagonal spans with DP-work
        # deltas and the aggregate kernel-matching/inference phases.
        solves = trace.find("solve")
        assert solves, "cold segments must record solver spans"
        diagonals = trace.find("diagonal")
        assert diagonals, "traced serial fill must record per-diagonal spans"
        assert any(span.attrs.get("cells_evaluated", 0) > 0 for span in diagonals)
        assert trace.find("kernel_matching") and trace.find("inference")
        # Chrome export covers every span in the tree.
        events = trace.to_chrome_trace()
        assert {event["name"] for event in events} >= {
            "compile",
            "segment",
            "solve",
            "dp_fill",
            "diagonal",
        }

    def test_untraced_compile_carries_no_tracer(self):
        result = compile_source(DAG_SOURCE)
        assert result.trace is None

    def test_second_compile_reports_plan_cache_provenance(self):
        from repro.frontend.compiler import Compiler

        compiler = Compiler(CompileOptions(trace=True))
        first = compiler.compile(DAG_SOURCE)
        assert {provenance_of(c) for c in first.assignments} == {"cold_dp"}
        second = compiler.compile(DAG_SOURCE)
        assert {provenance_of(c) for c in second.assignments} == {"plan_cache"}
        lookups = second.trace.find("plan_cache_lookup")
        assert lookups and all(span.attrs["hit"] for span in lookups)
        for span in second.trace.find("segment"):
            assert span.attrs["provenance"] == "plan_cache"

    def test_explain_renders_provenance_report(self):
        from repro.frontend.compiler import Compiler

        compiler = Compiler(CompileOptions(trace=True))
        compiler.compile(DAG_SOURCE)
        report = compiler.compile(DAG_SOURCE).explain()
        assert "plan provenance:" in report
        assert "plan-cache hit" in report
        assert "Y :=" in report and "Z :=" in report
        assert explain_result is not None  # the public alias backs .explain()

    def test_parallel_trace_records_diagonals(self):
        result = compile_source(
            DAG_SOURCE, options=CompileOptions(trace=True, parallelism="threads:2")
        )
        diagonals = result.trace.find("diagonal")
        assert diagonals and all(span.end is not None for span in diagonals)

    def test_trace_flag_stays_out_of_plan_fingerprint(self):
        from repro.persist.plan_cache import plan_fingerprint

        base = CompileOptions()
        traced = CompileOptions(trace=True)
        assert plan_fingerprint(base) == plan_fingerprint(traced)
        assert CompileOptions.from_wire(traced.to_wire()).trace is True
        assert CompileOptions.from_wire(base.to_wire()).trace is False


# ---------------------------------------------------------------------------
# Service observability: /metrics + request ids over HTTP and the pool
# ---------------------------------------------------------------------------

@pytest.fixture(scope="class")
def obs_service():
    reset_service_metrics()
    executor = InProcessExecutor()
    server, thread = start_server(executor, port=0)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base
    server.shutdown()
    thread.join(timeout=5.0)
    executor.close()
    reset_service_metrics()


def _request(url, payload=None, headers=None):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(url, data=data, headers=dict(headers or {}))
    if payload is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=60) as response:
        body = response.read().decode("utf-8")
        return response.status, dict(response.headers), body


class TestServiceObservability:
    def test_metrics_exposition_is_well_formed_with_all_layers(self, obs_service):
        # Generate some traffic first so histograms and telemetry are live.
        _request(
            f"{obs_service}/compile",
            {"source": "Matrix A (10, 10) <>\nMatrix B (10, 5) <>\nX := A * B\n"},
        )
        _request(f"{obs_service}/healthz")
        status, headers, text = _request(f"{obs_service}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert_well_formed_exposition(text)
        for layer in CACHE_LAYERS:
            assert f'layer="{layer}"' in text, f"missing telemetry layer {layer}"
        assert "repro_service_workers" in text
        assert "repro_pool_requests" in text
        # Histogram triple with cumulative buckets per endpoint.
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert 'endpoint="/compile"' in text and 'le="+Inf"' in text
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_request_latency_seconds_bucket")
            and 'endpoint="/compile"' in line
        ]
        assert buckets and buckets == sorted(buckets)

    def test_request_id_header_is_echoed_and_propagates(self, obs_service):
        marker = "obs-test-req-12345"
        status, headers, body = _request(
            f"{obs_service}/compile",
            {"source": "Matrix A (8, 8) <>\nX := A * A\n"},
            headers={"X-Request-Id": marker},
        )
        assert status == 200
        assert headers["X-Request-Id"] == marker
        assert json.loads(body)["request_id"] == marker

    def test_body_request_id_wins_over_header(self, obs_service):
        status, headers, body = _request(
            f"{obs_service}/compile",
            {
                "source": "Matrix A (8, 8) <>\nX := A * A\n",
                "request_id": "body-id-789",
            },
            headers={"X-Request-Id": "header-id-123"},
        )
        assert status == 200
        assert json.loads(body)["request_id"] == "body-id-789"
        assert headers["X-Request-Id"] == "body-id-789"

    def test_fresh_request_id_generated_when_absent(self, obs_service):
        status, headers, body = _request(f"{obs_service}/healthz")
        assert status == 200
        assert re.fullmatch(r"[0-9a-f]{32}", headers["X-Request-Id"])


class TestRequestIdThroughPool:
    def test_request_id_survives_worker_round_trip(self):
        pool = WorkerPool(workers=1, request_timeout=120.0)
        try:
            request = CompileRequest(
                source="Matrix A (12, 12) <>\nMatrix B (12, 6) <>\nX := A * B\n",
                request_id="pool-req-42",
            )
            response = pool.submit(request)
            assert response.ok, response.error
            assert response.request_id == "pool-req-42"
        finally:
            pool.close()

"""Tests for the expression identity caches and the hash-consing layer.

Expressions cache their structural ``_key()`` tuple and hash at construction
(:meth:`Expression._prime_identity_cache`); the interner maps structurally
equal expressions onto one canonical object.  These tests pin down the
invariants the rest of the system relies on: cached identity equals
recomputed identity, equality/hashing semantics are unchanged, and interned
construction is referentially transparent.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.algebra import (
    ExpressionInterner,
    Inverse,
    InverseTranspose,
    Matrix,
    Property,
    Temporary,
    Times,
    Transpose,
    Vector,
    default_interner,
    intern,
    interning_disabled,
)
from repro.algebra.operators import Plus
from repro.matching.patterns import Wildcard
from test_property_based import generalized_chains

_SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _sample_expressions():
    a = Matrix("A", 8, 8, {Property.SPD})
    b = Matrix("B", 8, 5)
    l = Matrix("L", 5, 5, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    v = Vector("v", 5)
    return [
        a,
        b,
        l,
        v,
        Temporary(8, 5, {Property.FULL_RANK}, origin=Times(a, b)),
        Transpose(b),
        Inverse(a),
        InverseTranspose(l),
        Times(a, b, l),
        Times(Inverse(a), b),
        Plus(a, Transpose(a)),
        Times(Transpose(b), a, b),
    ]


class TestIdentityCaches:
    def test_cached_key_equals_recomputed_key(self):
        for expr in _sample_expressions():
            assert expr.structural_key() == expr._key()
            # The cache is sticky: repeated calls return the same object.
            assert expr.structural_key() is expr.structural_key()

    def test_cached_hash_equals_uncached_formula(self):
        for expr in _sample_expressions():
            assert hash(expr) == hash((type(expr).__name__, expr._key()))

    def test_caches_are_primed_at_construction(self):
        for expr in _sample_expressions():
            assert hasattr(expr, "_key_cache")
            assert hasattr(expr, "_hash_cache")

    def test_structurally_equal_copies_hash_and_compare_equal(self):
        a1 = Matrix("A", 8, 8, {Property.SPD})
        a2 = Matrix("A", 8, 8, {Property.SPD})
        assert a1 == a2 and hash(a1) == hash(a2)
        t1, t2 = Times(a1, a1.T), Times(a2, a2.T)
        assert t1 == t2 and hash(t1) == hash(t2)
        assert Times(a1, a1) != Times(a1, a1.I)
        # Different leaf type with identical fields must stay distinct.
        tmp = Temporary(8, 8, {Property.SPD}, name="A")
        assert tmp != a1

    def test_wildcard_uses_lazy_cache_path(self):
        wild = Wildcard("X")
        assert hash(wild) == hash(Wildcard("X"))
        assert wild.structural_key() == ("X",)
        pattern_node = Times(wild, Wildcard("Y"))
        assert pattern_node == Times(Wildcard("X"), Wildcard("Y"))

    @given(generalized_chains())
    @_SETTINGS
    def test_random_chain_nodes_have_consistent_caches(self, expression):
        for node in expression.preorder():
            assert node.structural_key() == node._key()
            assert hash(node) == hash((type(node).__name__, node._key()))


class TestInterning:
    def test_interned_construction_returns_identical_objects(self):
        interner = ExpressionInterner()
        a1 = Matrix("A", 8, 8, {Property.SPD})
        a2 = Matrix("A", 8, 8, {Property.SPD})
        assert interner.intern(a1) is interner.intern(a2)
        chain1 = Times(a1, Transpose(a1))
        chain2 = Times(a2, Transpose(a2))
        assert interner.intern(chain1) is interner.intern(chain2)

    def test_interned_node_holds_canonical_children(self):
        interner = ExpressionInterner()
        a = interner.intern(Matrix("A", 4, 4))
        b = interner.intern(Matrix("B", 4, 4))
        product = interner.intern(Times(Matrix("A", 4, 4), Matrix("B", 4, 4)))
        assert product.children[0] is a
        assert product.children[1] is b

    def test_interning_preserves_structure_and_text(self):
        for expr in _sample_expressions():
            interner = ExpressionInterner()
            canonical = interner.intern(expr)
            assert canonical == expr
            assert str(canonical) == str(expr)
            assert canonical.shape == expr.shape

    def test_distinct_expressions_stay_distinct(self):
        interner = ExpressionInterner()
        a = interner.intern(Matrix("A", 4, 4))
        b = interner.intern(Matrix("B", 4, 4))
        assert a is not b
        assert interner.intern(Times(a, b)) is not interner.intern(Times(b, a))

    def test_module_level_intern_uses_default_interner(self):
        a = intern(Matrix("InternMe", 3, 3))
        assert intern(Matrix("InternMe", 3, 3)) is a
        assert default_interner().intern(Matrix("InternMe", 3, 3)) is a

    def test_interning_disabled_is_identity(self):
        fresh = Matrix("DisabledCase", 3, 3)
        with interning_disabled():
            assert intern(fresh) is fresh
            other = Matrix("DisabledCase", 3, 3)
            assert intern(other) is other  # no canonicalization in the scope

    def test_table_reset_keeps_interning_sound(self):
        interner = ExpressionInterner(max_entries=2)
        a = interner.intern(Matrix("A", 4, 4))
        interner.intern(Matrix("B", 4, 4))
        interner.intern(Matrix("C", 4, 4))  # triggers the wholesale reset
        again = interner.intern(Matrix("A", 4, 4))
        assert again == a  # identity may differ after a reset, equality may not

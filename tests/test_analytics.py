"""Tests for the workload-analytics layer (repro.obs.analytics).

Covers the PR 10 acceptance criteria:

* the three sketch structures (Space-Saving heavy hitters, DDSketch-style
  log-bucket quantiles, wall-clock-aligned counter rings) are correct and
  **mergeable**: N workers seeing disjoint traffic pool to the same top-k
  and quantiles a single stream would produce;
* ``execute_request`` records name-abstracted request signatures with
  plan-hit provenance, and the state travels across the worker-pool
  process boundary through the existing telemetry ``stats`` path;
* the HTTP front-end serves ``GET /analytics``, ``GET /timeseries``,
  quantile gauge series on ``GET /metrics`` and collapsed flamegraph
  stacks on ``POST /profile``;
* profiling hooks (``options.profile`` / ``repro.obs.profile``) return
  top-function tables and ``flamegraph.pl``-compatible collapsed stacks;
* repeated structured warnings are rate-limited by the token-bucket
  suppressor without losing the suppressed count.
"""

from __future__ import annotations

import io
import json
import logging
import random
import re
import urllib.request

import pytest

from repro.obs import reset_service_metrics
from repro.obs.analytics import (
    CounterRing,
    QuantileSketch,
    SpaceSavingSketch,
    WorkloadAnalytics,
    analytics_disabled,
    analytics_enabled,
    analytics_report,
    merge_analytics_states,
    render_quantile_lines,
    service_analytics,
    timeseries_report,
    workload_analytics,
)
from repro.obs.logging import (
    JsonFormatter,
    TokenBucketSuppressor,
    get_logger,
    log_rate_limited,
)
from repro.obs.profile import (
    collapsed_stacks,
    profile_call,
    profile_payload,
    top_functions,
)
from repro.obs.trace import Tracer
from repro.service import CompileRequest, InProcessExecutor, WorkerPool
from repro.service.api import affinity_key, execute_request
from repro.service.http import start_server


def source_for(tag: str, size: int = 60) -> str:
    """A compile problem whose structure (and thus signature) varies with
    *size* but not with *tag* (operand names are signature-abstracted)."""
    return (
        f"Matrix {tag}A ({size}, {size}) <spd>\n"
        f"Matrix {tag}B ({size}, {size - 10}) <>\n"
        f"X := {tag}A^-1 * {tag}B\n"
    )


# ---------------------------------------------------------------------------
# Space-Saving heavy hitters
# ---------------------------------------------------------------------------

class TestSpaceSavingSketch:
    def test_exact_under_capacity(self):
        sketch = SpaceSavingSketch(capacity=8)
        for key, repeats in [("a", 5), ("b", 3), ("c", 1)]:
            for _ in range(repeats):
                sketch.observe(key, plan_hit=(key == "a"), latency_s=0.01)
        top = sketch.top(3)
        assert [(e["signature"], e["count"]) for e in top] == [
            ("a", 5), ("b", 3), ("c", 1)
        ]
        assert all(e["error"] == 0 for e in top)
        assert top[0]["plan_hit_rate"] == pytest.approx(1.0)
        assert top[0]["mean_latency_s"] == pytest.approx(0.01)
        assert top[1]["plan_hit_rate"] == 0.0

    def test_eviction_inherits_min_count_as_error(self):
        sketch = SpaceSavingSketch(capacity=2)
        for _ in range(10):
            sketch.observe("hot")
        sketch.observe("warm")
        sketch.observe("new")  # evicts "warm" (count 1)
        entries = {e["signature"]: e for e in sketch.top(2)}
        assert "warm" not in entries
        assert entries["new"]["count"] == 2  # floor 1 + its own observation
        assert entries["new"]["error"] == 1
        assert sketch.total == 12  # evicted mass stays in the stream total

    def test_heavy_hitter_guarantee_under_eviction_pressure(self):
        # Any key with true frequency > total/capacity must stay tracked.
        rng = random.Random(7)
        sketch = SpaceSavingSketch(capacity=10)
        stream = ["hh"] * 400 + [f"noise{i}" for i in range(300)]
        rng.shuffle(stream)
        for key in stream:
            sketch.observe(key)
        top = sketch.top(1)
        assert top[0]["signature"] == "hh"
        # count overestimates by at most error, never underestimates.
        assert top[0]["count"] >= 400
        assert top[0]["count"] - top[0]["error"] <= 400

    def test_disjoint_merge_matches_single_stream(self):
        reference = SpaceSavingSketch(capacity=16)
        shards = [SpaceSavingSketch(capacity=16) for _ in range(3)]
        for shard_index, shard in enumerate(shards):
            for i in range(4):
                key = f"k{shard_index}.{i}"
                for _ in range(shard_index + i + 1):
                    shard.observe(key, plan_hit=True, latency_s=0.002)
                    reference.observe(key, plan_hit=True, latency_s=0.002)
        merged = SpaceSavingSketch(capacity=16)
        for shard in shards:
            merged.merge(shard.to_state())
        assert merged.total == reference.total
        assert merged.top(16) == reference.top(16)

    def test_state_roundtrip_and_empty_merge(self):
        sketch = SpaceSavingSketch(capacity=4)
        sketch.observe("x", latency_s=0.5)
        clone = SpaceSavingSketch.from_state(sketch.to_state())
        assert clone.top(4) == sketch.top(4)
        clone.merge(SpaceSavingSketch(capacity=4).to_state())
        assert clone.top(4) == sketch.top(4)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(capacity=0)


# ---------------------------------------------------------------------------
# Quantile sketch
# ---------------------------------------------------------------------------

class TestQuantileSketch:
    def test_relative_accuracy_bound(self):
        sketch = QuantileSketch(alpha=0.01)
        values = [0.0001 * i for i in range(1, 2001)]
        for value in values:
            sketch.observe(value)
        for q in (0.5, 0.95, 0.99):
            true = values[int(q * (len(values) - 1))]
            assert sketch.quantile(q) == pytest.approx(true, rel=0.025)

    def test_empty_and_single_sample(self):
        empty = QuantileSketch()
        assert empty.quantile(0.5) is None
        assert empty.summary() == {"count": 0}
        single = QuantileSketch()
        single.observe(0.125)
        # A single sample is clamped into [min, max]: exact.
        for q in (0.0, 0.5, 0.99, 1.0):
            assert single.quantile(q) == pytest.approx(0.125)

    def test_zero_bucket_collects_tiny_values(self):
        sketch = QuantileSketch()
        for _ in range(10):
            sketch.observe(0.0)
        sketch.observe(1.0)
        assert sketch.quantile(0.5) == pytest.approx(0.0)
        assert sketch.quantile(1.0) == pytest.approx(1.0, rel=0.02)

    def test_disjoint_halves_merge_equals_full_stream(self):
        full = QuantileSketch()
        low, high = QuantileSketch(), QuantileSketch()
        for i in range(1, 1001):
            value = 0.001 * i
            full.observe(value)
            (low if i <= 500 else high).observe(value)
        low.merge(high.to_state())
        for q in (0.1, 0.5, 0.9, 0.99):
            assert low.quantile(q) == pytest.approx(full.quantile(q))
        assert low.count == full.count and low.sum == pytest.approx(full.sum)

    def test_merge_accepts_json_stringified_bucket_keys(self):
        sketch = QuantileSketch()
        sketch.observe(0.25)
        state = json.loads(json.dumps(sketch.to_state()))  # int keys -> str
        clone = QuantileSketch.from_state(state)
        assert clone.quantile(0.5) == pytest.approx(sketch.quantile(0.5))

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.05).to_state())


# ---------------------------------------------------------------------------
# Counter rings
# ---------------------------------------------------------------------------

class TestCounterRing:
    def test_record_and_points_align_to_slots(self):
        ring = CounterRing(resolution_s=5.0, slots=10)
        ring.record(now=100.0)
        ring.record(now=102.0)
        ring.record(value=3.0, now=107.0)
        assert ring.points() == [[100.0, 2.0], [105.0, 3.0]]
        assert ring.total() == 5.0

    def test_retention_drops_old_slots(self):
        ring = CounterRing(resolution_s=1.0, slots=3)
        for t in range(10):
            ring.record(now=float(t))
        points = ring.points()
        assert len(points) == 3
        assert points[0][0] == 7.0  # only the newest 3 slots survive

    def test_cross_process_merge_aligns_absolute_slots(self):
        a = CounterRing(resolution_s=5.0, slots=100)
        b = CounterRing(resolution_s=5.0, slots=100)
        a.record(now=50.0)
        b.record(now=50.0)
        b.record(now=60.0)
        a.merge(b.to_state())
        assert a.points() == [[50.0, 2.0], [60.0, 1.0]]

    def test_state_roundtrip_through_json(self):
        ring = CounterRing(resolution_s=2.0, slots=5)
        ring.record(now=11.0)
        clone = CounterRing.from_state(json.loads(json.dumps(ring.to_state())))
        assert clone.points() == ring.points()


# ---------------------------------------------------------------------------
# WorkloadAnalytics bundle + state merging
# ---------------------------------------------------------------------------

class TestWorkloadAnalytics:
    def test_record_and_state(self):
        analytics = WorkloadAnalytics()
        analytics.record_request("sig-a", plan_hit=False, latency_s=0.02, now=10.0)
        analytics.record_request("sig-a", plan_hit=True, latency_s=0.01, now=11.0)
        analytics.observe_latency("compile_phase_latency_seconds", "phase", "solve", 0.015)
        state = analytics.state()
        assert state["layer"] == "analytics"
        assert state["requests"] == 2 and state["plan_hits"] == 1
        assert state["tracked_signatures"] == 1
        assert state["rings"]["requests"]["values"]
        assert state["latency"][0]["value"] == "solve"

    def test_merge_disjoint_states_matches_single_stream(self):
        reference = WorkloadAnalytics()
        shards = [WorkloadAnalytics() for _ in range(2)]
        for index, shard in enumerate(shards):
            for i in range(5):
                signature = f"sig-{index}-{i % 2}"
                for target in (shard, reference):
                    target.record_request(
                        signature,
                        plan_hit=(i > 0),
                        latency_s=0.001 * (i + 1),
                        now=100.0 + i,
                    )
                    target.observe_latency(
                        "compile_phase_latency_seconds",
                        "phase",
                        "solve",
                        0.001 * (i + 1) * (index + 1),
                    )
        merged = merge_analytics_states([shard.state() for shard in shards])
        expected = reference.state()
        assert merged["requests"] == expected["requests"] == 10
        assert merged["plan_hits"] == expected["plan_hits"]
        merged_report = analytics_report(merged)
        expected_report = analytics_report(expected)
        assert merged_report["signatures"]["top"] == expected_report["signatures"]["top"]
        merged_solve = merged_report["latency"]["compile_phase_latency_seconds"]["solve"]
        expected_solve = expected_report["latency"]["compile_phase_latency_seconds"]["solve"]
        # Summation order differs between the merged and single-stream
        # paths, so compare the summaries to float tolerance.
        assert merged_solve == pytest.approx(expected_solve)
        assert timeseries_report(merged)["series"] == timeseries_report(expected)["series"]

    def test_merge_empty_list_and_single_state(self):
        assert merge_analytics_states([])["requests"] == 0
        analytics = WorkloadAnalytics()
        analytics.record_request("s", plan_hit=False, latency_s=0.1)
        merged = merge_analytics_states([analytics.state(), {}])
        assert merged["requests"] == 1

    def test_enable_gate_context_manager(self):
        assert analytics_enabled()
        with analytics_disabled():
            assert not analytics_enabled()
        assert analytics_enabled()


# ---------------------------------------------------------------------------
# Pipeline integration: execute_request records signatures
# ---------------------------------------------------------------------------

class TestExecuteRequestRecording:
    def test_repeat_requests_count_one_signature_with_plan_hits(self):
        executor = InProcessExecutor()
        try:
            workload_analytics().reset()
            for _ in range(3):
                response = executor.submit(CompileRequest(source=source_for("t")))
                assert response.ok
            state = workload_analytics().state()
            assert state["requests"] == 3
            assert state["plan_hits"] >= 2  # first solve is cold
            report = analytics_report(state)
            assert report["signatures"]["top"][0]["count"] == 3
        finally:
            executor.close()

    def test_signature_matches_affinity_key_and_abstracts_names(self):
        executor = InProcessExecutor()
        try:
            workload_analytics().reset()
            executor.submit(CompileRequest(source=source_for("one")))
            executor.submit(CompileRequest(source=source_for("two")))
            top = analytics_report(workload_analytics().state())["signatures"]["top"]
            assert len(top) == 1 and top[0]["count"] == 2
            assert top[0]["signature"] == affinity_key(
                CompileRequest(source=source_for("three"))
            )
        finally:
            executor.close()

    def test_phase_latency_sketches_populated(self):
        workload_analytics().reset()
        execute_request(CompileRequest(source=source_for("p")))
        report = analytics_report(workload_analytics().state())
        phases = report["latency"]["compile_phase_latency_seconds"]
        assert phases["parse"]["count"] == 1
        assert phases["solve"]["count"] == 1
        assert phases["solve"]["p99_s"] > 0

    def test_disabled_gate_skips_recording(self):
        workload_analytics().reset()
        with analytics_disabled():
            execute_request(CompileRequest(source=source_for("off")))
        assert workload_analytics().state()["requests"] == 0


# ---------------------------------------------------------------------------
# Cross-worker merging through the pool's stats path
# ---------------------------------------------------------------------------

class TestPoolMerging:
    def test_two_workers_disjoint_traffic_merges_to_reference(self):
        # Distinct structures hash to (potentially) different workers via
        # affinity routing; the pooled analytics must equal what one
        # single-stream reference process would have recorded.
        sizes = [40, 50, 60, 70]
        repeats = {40: 4, 50: 3, 60: 2, 70: 1}
        pool = WorkerPool(workers=2, request_timeout=120.0)
        try:
            for size in sizes:
                for _ in range(repeats[size]):
                    response = pool.submit(
                        CompileRequest(source=source_for("w", size))
                    )
                    assert response.ok
            pooled = pool.analytics()
            assert pooled["requests"] == sum(repeats.values())
            report = analytics_report(pooled)
            counts = [e["count"] for e in report["signatures"]["top"]]
            assert counts == sorted(repeats.values(), reverse=True)
            assert report["signatures"]["top"][0]["signature"] == affinity_key(
                CompileRequest(source=source_for("z", 40))
            )
            # Quantiles merged across workers: one pooled sketch with all
            # the samples.
            phases = report["latency"]["compile_phase_latency_seconds"]
            assert phases["solve"]["count"] == sum(repeats.values())
        finally:
            pool.close()

    def test_inprocess_executor_exposes_analytics(self):
        executor = InProcessExecutor()
        try:
            workload_analytics().reset()
            executor.submit(CompileRequest(source=source_for("ip")))
            assert executor.analytics()["requests"] >= 1
        finally:
            executor.close()


# ---------------------------------------------------------------------------
# HTTP endpoints
# ---------------------------------------------------------------------------

@pytest.fixture(scope="class")
def analytics_service():
    reset_service_metrics()
    workload_analytics().reset()
    service_analytics().reset()
    executor = InProcessExecutor()
    server, thread = start_server(executor, port=0)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base
    server.shutdown()
    thread.join(timeout=5.0)
    executor.close()
    reset_service_metrics()
    workload_analytics().reset()
    service_analytics().reset()


def _request(url, payload=None):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(url, data=data)
    if payload is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, dict(response.headers), response.read().decode()


class TestAnalyticsEndpoints:
    def test_analytics_endpoint_reports_top_signatures(self, analytics_service):
        for _ in range(3):
            status, _, _ = _request(
                f"{analytics_service}/compile", {"source": source_for("h")}
            )
            assert status == 200
        status, _, body = _request(f"{analytics_service}/analytics")
        assert status == 200
        report = json.loads(body)
        assert report["requests"] >= 3
        top = report["signatures"]["top"]
        assert top and top[0]["count"] >= 3
        assert "plan_hit_rate" in top[0] and "mean_latency_s" in top[0]
        # Front-end endpoint latencies ride along.
        assert "endpoint_latency_seconds" in report["latency"]

    def test_timeseries_endpoint_has_request_series(self, analytics_service):
        _request(f"{analytics_service}/compile", {"source": source_for("ts")})
        status, _, body = _request(f"{analytics_service}/timeseries")
        assert status == 200
        payload = json.loads(body)
        series = payload["series"]
        assert sum(v for _, v in series["requests"]) >= 1
        assert payload["resolution_s"] > 0 and payload["slots"] >= 1

    def test_metrics_carries_quantile_gauges(self, analytics_service):
        _request(f"{analytics_service}/compile", {"source": source_for("q")})
        status, _, text = _request(f"{analytics_service}/metrics")
        assert status == 200
        for quantile in ("0.5", "0.95", "0.99"):
            assert re.search(
                r'repro_compile_phase_latency_seconds\{phase="solve",'
                rf'quantile="{quantile}"\}} [0-9eE\.\+\-]+',
                text,
            ), f"missing solve quantile {quantile}"
        assert re.search(
            r'repro_endpoint_latency_seconds\{endpoint="/compile",quantile="0.99"\}',
            text,
        )

    def test_profile_endpoint_returns_collapsed_stacks(self, analytics_service):
        status, headers, body = _request(
            f"{analytics_service}/profile", {"source": source_for("pf")}
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        lines = body.rstrip("\n").splitlines()
        assert lines, "collapsed stacks must not be empty"
        for line in lines[:50]:
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit(), f"bad collapsed line: {line!r}"
            assert " " not in stack.replace("; ", ";")


# ---------------------------------------------------------------------------
# Profiling hooks
# ---------------------------------------------------------------------------

class TestProfiling:
    def test_profile_call_and_payload(self):
        def work():
            return sum(i * i for i in range(2000))

        result, profiler = profile_call(work)
        assert result == sum(i * i for i in range(2000))
        rows = top_functions(profiler, limit=5)
        assert rows and all(
            {"function", "calls", "tottime_s", "cumtime_s"} <= set(row)
            for row in rows
        )
        payload = profile_payload(profiler)
        assert payload["top_functions"] and payload["collapsed"]

    def test_collapsed_stack_format(self):
        def inner():
            return sum(range(1000))

        def outer():
            return inner() + inner()

        _, profiler = profile_call(outer)
        text = collapsed_stacks(profiler)
        assert text.endswith("\n")
        for line in text.rstrip("\n").splitlines():
            stack, _, count = line.rpartition(" ")
            assert count.isdigit()
            assert ";" in stack or stack  # root-only frames are legal

    def test_wire_option_roundtrip_and_response_payload(self):
        from repro.options import CompileOptions

        options = CompileOptions(profile=True)
        assert options.to_wire()["profile"] is True
        assert CompileOptions.from_wire(options.to_wire()).profile is True
        response = execute_request(
            CompileRequest(source=source_for("wire"), options=options)
        )
        assert response.ok and response.profile is not None
        assert response.profile["collapsed"]
        roundtrip = type(response).from_dict(
            json.loads(json.dumps(response.to_dict()))
        )
        assert roundtrip.profile == response.profile

    def test_unprofiled_response_has_no_payload(self):
        response = execute_request(CompileRequest(source=source_for("plain")))
        assert response.profile is None
        assert "profile" not in response.to_dict()


# ---------------------------------------------------------------------------
# Rate-limited logging
# ---------------------------------------------------------------------------

class TestTokenBucketSuppressor:
    def test_burst_then_suppression_then_refill(self):
        clock = [0.0]
        suppressor = TokenBucketSuppressor(rate=1.0, burst=2, clock=lambda: clock[0])
        assert suppressor.check("k") == (True, 0)
        assert suppressor.check("k") == (True, 0)
        emit, _ = suppressor.check("k")
        assert not emit
        emit, _ = suppressor.check("k")
        assert not emit
        clock[0] = 1.0  # one token refilled
        emit, suppressed = suppressor.check("k")
        assert emit and suppressed == 2

    def test_keys_are_independent(self):
        clock = [0.0]
        suppressor = TokenBucketSuppressor(rate=1.0, burst=1, clock=lambda: clock[0])
        assert suppressor.check("a")[0]
        assert suppressor.check("b")[0]
        assert not suppressor.check("a")[0]

    def test_log_rate_limited_attaches_suppressed_count(self):
        logger = get_logger("test.suppress")
        logger.setLevel(logging.DEBUG)
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonFormatter())
        logger.addHandler(handler)
        try:
            clock = [0.0]
            suppressor = TokenBucketSuppressor(
                rate=1.0, burst=1, clock=lambda: clock[0]
            )
            assert log_rate_limited(
                logger, "warning", "boom", suppressor=suppressor, request_id="r1"
            )
            for _ in range(3):
                assert not log_rate_limited(
                    logger, "warning", "boom", suppressor=suppressor
                )
            clock[0] = 5.0
            assert log_rate_limited(logger, "warning", "boom", suppressor=suppressor)
            lines = [json.loads(l) for l in stream.getvalue().splitlines()]
            assert len(lines) == 2  # 5 calls, 3 suppressed
            assert lines[0]["suppressed_count"] == 0
            assert lines[0]["request_id"] == "r1"
            assert lines[1]["suppressed_count"] == 3
        finally:
            logger.removeHandler(handler)


# ---------------------------------------------------------------------------
# Trace request-id propagation
# ---------------------------------------------------------------------------

class TestTraceRequestId:
    def test_request_id_in_json_and_chrome_exports(self):
        tracer = Tracer()
        with tracer.span("compile"):
            pass
        tracer.request_id = "req-42"
        assert tracer.to_json()["request_id"] == "req-42"
        events = tracer.to_chrome_trace()
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["labels"] == "request req-42"

    def test_untagged_tracer_exports_without_request_id(self):
        tracer = Tracer()
        with tracer.span("compile"):
            pass
        assert "request_id" not in tracer.to_json()
        assert all(event["ph"] != "M" for event in tracer.to_chrome_trace())

    def test_service_compile_tags_trace(self):
        from repro.options import CompileOptions

        response = execute_request(
            CompileRequest(
                source=source_for("tr"),
                options=CompileOptions(trace=True),
                request_id="trace-me",
            )
        )
        assert response.ok


# ---------------------------------------------------------------------------
# Prometheus rendering of quantile series
# ---------------------------------------------------------------------------

class TestRenderQuantileLines:
    def test_renders_gauge_blocks_with_counts(self):
        analytics = WorkloadAnalytics()
        for value in (0.01, 0.02, 0.03):
            analytics.observe_latency("endpoint_latency_seconds", "endpoint", "/compile", value)
        text = render_quantile_lines([analytics.state()])
        assert text.endswith("\n")
        assert "# TYPE repro_endpoint_latency_seconds gauge" in text
        assert 'repro_endpoint_latency_seconds{endpoint="/compile",quantile="0.5"}' in text
        assert 'repro_endpoint_latency_seconds_count{endpoint="/compile"} 3' in text

    def test_empty_states_render_nothing(self):
        assert render_quantile_lines([{}, None, WorkloadAnalytics().state()]) == ""

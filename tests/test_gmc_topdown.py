"""Tests for the top-down memoized GMC variant (equivalence with bottom-up)."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.algebra import Inverse, Matrix, Property, Times, Transpose
from repro.core import GMCAlgorithm, TopDownGMC, UncomputableChainError
from repro.kernels import default_catalog
from repro.runtime import allclose, execute_program, instantiate_expression

from test_property_based import generalized_chains

_SETTINGS = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _table2_chain():
    a = Matrix("A", 50, 50, {Property.SPD})
    b = Matrix("B", 50, 30)
    c = Matrix("C", 30, 30, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    return Times(Inverse(a), b, Transpose(c))


class TestBasics:
    def test_same_solution_as_bottom_up_on_table2_chain(self):
        chain = _table2_chain()
        top_down = TopDownGMC().solve(chain)
        bottom_up = GMCAlgorithm().solve(chain)
        assert top_down.optimal_cost == pytest.approx(bottom_up.optimal_cost)
        assert top_down.kernel_sequence() == bottom_up.kernel_sequence()
        assert top_down.parenthesization() == bottom_up.parenthesization()

    def test_program_executes_correctly(self):
        chain = _table2_chain()
        program = TopDownGMC().solve(chain).program()
        environment = instantiate_expression(chain, seed=3)
        result = execute_program(program, environment)
        assert allclose(chain, environment, result, rtol=1e-7, atol=1e-7)

    def test_uncomputable_chain_detected(self):
        a = Matrix("A", 10, 10, {Property.NON_SINGULAR})
        b = Matrix("B", 10, 10, {Property.NON_SINGULAR})
        catalog = default_catalog(include_combined_inverse=False)
        solution = TopDownGMC(catalog=catalog).solve(Times(Inverse(a), Inverse(b)))
        assert not solution.computable
        with pytest.raises(UncomputableChainError):
            list(solution.construct_solution())

    def test_partial_uncomputability_is_skipped_lazily(self):
        a = Matrix("A", 10, 10, {Property.NON_SINGULAR})
        b = Matrix("B", 10, 10, {Property.NON_SINGULAR})
        c = Matrix("C", 10, 6)
        catalog = default_catalog(include_combined_inverse=False)
        solution = TopDownGMC(catalog=catalog).solve(Times(Inverse(a), Inverse(b), c))
        assert solution.computable
        assert solution.kernel_sequence() == ["GESV", "GESV"]

    def test_metric_selection(self):
        chain = _table2_chain()
        timed = TopDownGMC(metric="time").solve(chain)
        assert timed.computable
        assert timed.optimal_cost > 0.0

    def test_single_factor_chain(self):
        a = Matrix("A", 5, 5)
        solution = TopDownGMC().solve([a])
        assert solution.optimal_cost == 0.0
        assert solution.program().calls == []


class TestEquivalenceProperty:
    @given(generalized_chains())
    @_SETTINGS
    def test_top_down_equals_bottom_up_on_random_chains(self, expression):
        top_down = TopDownGMC().solve(expression)
        bottom_up = GMCAlgorithm().solve(expression)
        assert top_down.computable == bottom_up.computable
        if bottom_up.computable:
            assert top_down.optimal_cost == pytest.approx(bottom_up.optimal_cost)
            assert top_down.total_flops == pytest.approx(bottom_up.total_flops)

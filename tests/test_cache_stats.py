"""Tests for the uniform cache-stats protocol and bounded eviction policies.

Every cache layer of the pipeline -- expression interner, property-inference
memo, signature-keyed match cache and kernel-cost LRU -- exposes ``stats()``
(plain dict with ``size``/``max_entries``/``hits``/``misses``/``hit_rate``/
``evictions``) and ``reset_stats()``, which is what the service telemetry
aggregates across workers.
"""

from __future__ import annotations

import pytest

from repro.algebra import Matrix, Property
from repro.algebra.inference import PropertyInference, inference_engine
from repro.algebra.interning import ExpressionInterner, default_interner
from repro.algebra.operators import Times
from repro.cost.metrics import FlopCount
from repro.core import GMCAlgorithm
from repro.kernels.catalog import KernelCatalog, build_default_kernels
from repro.service import telemetry

REQUIRED_KEYS = {"layer", "size", "max_entries", "hits", "misses", "hit_rate", "evictions"}


def chain(prefix: str, count: int = 4):
    mats = [Matrix(f"{prefix}{i}", 8, 8) for i in range(count)]
    return Times(*mats)


class TestUniformProtocol:
    def test_all_four_layers_speak_the_protocol(self):
        catalog = KernelCatalog(build_default_kernels(), name="stats-test")
        metric = FlopCount()
        GMCAlgorithm(catalog=catalog, metric=metric).solve(chain("U"))
        layers = [
            catalog.match_cache,
            default_interner(),
            inference_engine(),
            metric,
        ]
        for layer in layers:
            stats = layer.stats()
            assert REQUIRED_KEYS <= set(stats), stats.get("layer")
            total = stats["hits"] + stats["misses"]
            expected = stats["hits"] / total if total else 0.0
            assert stats["hit_rate"] == pytest.approx(expected)
            layer.reset_stats()
            after = layer.stats()
            assert after["hits"] == after["misses"] == after["evictions"] == 0

    def test_telemetry_snapshot_and_aggregate(self):
        catalog = KernelCatalog(build_default_kernels(), name="stats-test-2")
        metric = FlopCount()
        GMCAlgorithm(catalog=catalog, metric=metric).solve(chain("V"))
        snap = telemetry.snapshot(catalog, {"flops": metric})
        assert set(telemetry.CACHE_LAYERS) <= set(snap)
        pooled = telemetry.aggregate([snap, snap])
        assert pooled["workers"] == 2
        for layer in telemetry.CACHE_LAYERS:
            if layer == "analytics":
                # The analytics layer aggregates by sketch merging, not by
                # counter summing (see repro.obs.analytics); covered in
                # tests/test_analytics.py.
                assert pooled[layer]["requests"] == 2 * snap[layer]["requests"]
                continue
            assert pooled[layer]["hits"] == 2 * snap[layer]["hits"]
            assert pooled[layer]["misses"] == 2 * snap[layer]["misses"]
        # Pooled rate is recomputed from pooled counters, never averaged.
        match = pooled["match_cache"]
        total = match["hits"] + match["misses"]
        assert match["hit_rate"] == pytest.approx(
            match["hits"] / total if total else 0.0
        )


class TestInternerEviction:
    def test_lru_eviction_replaces_wholesale_clear(self):
        interner = ExpressionInterner(max_entries=4)
        mats = [Matrix(f"E{i}", 4, 4) for i in range(8)]
        for mat in mats:
            interner.intern(mat)
        # Bounded: never exceeds the cap, evicting one entry at a time.
        assert len(interner) == 4
        assert interner.evictions == 4
        # The most recent entries survive; the oldest were evicted.
        assert interner.intern(mats[-1]) is mats[-1]
        assert interner.stats()["evictions"] == 4

    def test_lookup_refreshes_recency(self):
        interner = ExpressionInterner(max_entries=2)
        a, b, c = (Matrix(f"R{i}", 4, 4) for i in range(3))
        interner.intern(a)
        interner.intern(b)
        interner.intern(a)  # refresh a; b is now LRU
        interner.intern(c)  # evicts b
        assert interner.intern(Matrix("R0", 4, 4)) is a
        assert interner.intern(Matrix("R1", 4, 4)) is not b

    def test_eviction_keeps_canonicalization_correct(self):
        interner = ExpressionInterner(max_entries=3)
        product = Times(Matrix("K0", 4, 4), Matrix("K1", 4, 4))
        first = interner.intern(product)
        for index in range(10):  # force eviction churn
            interner.intern(Matrix(f"K{index + 2}", 4, 4))
        second = interner.intern(Times(Matrix("K0", 4, 4), Matrix("K1", 4, 4)))
        # The old representative may have been evicted, but the new one is
        # structurally equal -- canonicalization degrades, never breaks.
        assert second == first


class TestInferenceMemoEviction:
    def test_memo_is_bounded_with_partial_eviction(self):
        engine = PropertyInference(max_entries=32)
        for index in range(200):
            engine.infer(chain(f"M{index}_", 3))
        stats = engine.stats()
        assert stats["size"] <= 32 + 16  # one walk may overshoot by its tree
        assert stats["evictions"] > 0
        assert stats["inferred_size"] <= 32 + 16

    def test_eviction_preserves_results(self):
        engine = PropertyInference(max_entries=16)
        spd = Matrix("S", 8, 8, {Property.SPD})
        reference = engine.infer(spd)
        for index in range(100):
            engine.infer(chain(f"N{index}_", 3))
        assert engine.infer(spd) == reference

    def test_version_change_still_clears_wholesale(self):
        from repro.algebra.inference import PREDICATES, is_zero

        engine = PropertyInference(max_entries=1000)
        engine.infer(chain("VC", 3))
        assert engine.stats()["size"] > 0
        PREDICATES[Property.ZERO] = is_zero  # bump the registry version
        try:
            engine.infer(chain("VD", 3))
            assert engine._registry_version == PREDICATES.version
        finally:
            del PREDICATES[Property.ZERO]
            PREDICATES[Property.ZERO] = is_zero


class TestKernelCostStats:
    def test_cost_cache_counts_hits_and_evictions(self):
        metric = FlopCount()
        metric.cost_cache_size = 4
        algorithm = GMCAlgorithm(metric=metric)
        algorithm.solve(chain("C", 5))
        stats = metric.stats()
        assert stats["misses"] > 0
        assert stats["size"] <= 4
        assert stats["evictions"] >= stats["misses"] - 4
        metric.reset_stats()
        assert metric.stats()["hits"] == 0

"""Tests for the baseline parenthesization policies, in particular the
Armadillo heuristic described in Section 4 of the paper."""

import random

import pytest

from repro.baselines.parenthesizers import (
    armadillo,
    left_to_right,
    right_to_left,
    tree_products,
    tree_to_string,
    vector_aware,
)
from repro.core.mcp import parenthesization_cost


def _shapes_from_sizes(sizes):
    return [(sizes[i], sizes[i + 1]) for i in range(len(sizes) - 1)]


class TestBasicPolicies:
    def test_left_to_right(self):
        shapes = _shapes_from_sizes([2, 3, 4, 5])
        assert left_to_right(shapes) == ((0, 1), 2)

    def test_right_to_left(self):
        shapes = _shapes_from_sizes([2, 3, 4, 5])
        assert right_to_left(shapes) == (0, (1, 2))

    def test_tree_products_bottom_up(self):
        tree = ((0, 1), (2, 3))
        products = tree_products(tree)
        assert products == [(0, 1), (2, 3), ((0, 1), (2, 3))]

    def test_tree_to_string(self):
        assert tree_to_string(((0, 1), 2), ["A", "B", "C"]) == "((A * B) * C)"


class TestVectorAware:
    def test_degenerates_to_left_to_right_without_vectors(self):
        shapes = _shapes_from_sizes([2, 3, 4, 5])
        assert vector_aware(shapes) == left_to_right(shapes)

    def test_right_association_up_to_the_vector(self):
        # M1 (50x40), M2 (40x30), v (30x1)
        shapes = [(50, 40), (40, 30), (30, 1)]
        assert vector_aware(shapes) == (0, (1, 2))

    def test_outer_product_tail_is_folded_afterwards(self):
        # M1 M2 v1 v2^T
        shapes = [(50, 40), (40, 30), (30, 1), (1, 20)]
        assert vector_aware(shapes) == ((0, (1, 2)), 3)


class TestArmadilloHeuristic:
    def test_three_chain_rule_prefers_smaller_intermediate(self):
        # |AB| = 2*50=100 elements, |BC| = 10*3=30 -> A(BC).
        shapes = [(2, 10), (10, 50), (50, 3)]
        assert armadillo(shapes) == (0, (1, 2))
        # |AB| = 2*3=6, |BC| = 10*50=500 -> (AB)C.
        shapes = [(2, 10), (10, 3), (3, 50)]
        assert armadillo(shapes) == ((0, 1), 2)

    def test_four_chain_rule(self):
        # |ABC| small -> (ABC)D; |BCD| small -> A(BCD).
        shapes = [(2, 10), (10, 20), (20, 3), (3, 50)]
        tree = armadillo(shapes)
        assert tree[1] == 3  # (ABC) D
        shapes = [(50, 10), (10, 20), (20, 3), (3, 2)]
        tree = armadillo(shapes)
        assert tree[0] == 0  # A (BCD)

    def test_never_produces_balanced_split(self):
        """Section 4: the parenthesization (AB)(CD) is not reachable."""
        rng = random.Random(0)
        for _ in range(50):
            sizes = [rng.randrange(10, 500, 10) for _ in range(5)]
            tree = armadillo(_shapes_from_sizes(sizes))
            assert tree != ((0, 1), (2, 3))

    def test_long_chains_are_broken_into_groups(self):
        sizes = [10, 20, 30, 40, 50, 60, 70, 80]
        shapes = _shapes_from_sizes(sizes)
        tree = armadillo(shapes)
        products = tree_products(tree)
        assert len(products) == len(shapes) - 1

    def test_cost_is_valid_and_at_least_optimal(self):
        rng = random.Random(1)
        for _ in range(30):
            length = rng.randint(2, 8)
            sizes = [rng.randrange(10, 400, 10) for _ in range(length + 1)]
            shapes = _shapes_from_sizes(sizes)
            tree = armadillo(shapes)
            cost = parenthesization_cost(_relabel(tree), sizes)
            from repro.core.mcp import MatrixChainDP

            assert cost >= MatrixChainDP(sizes).optimal_cost - 1e-6

    def test_heuristic_is_better_than_left_to_right_on_shrinking_tails(self):
        """The heuristic finds A(BC)-style groupings that left-to-right misses."""
        sizes = [100, 800, 700, 20]
        shapes = _shapes_from_sizes(sizes)
        heuristic_cost = parenthesization_cost(_relabel(armadillo(shapes)), sizes)
        ltr_cost = parenthesization_cost(_relabel(left_to_right(shapes)), sizes)
        assert heuristic_cost < ltr_cost


def _relabel(tree):
    """Identity transformation kept for clarity (trees already use indices)."""
    return tree


class TestTreeValidity:
    @pytest.mark.parametrize("policy", [left_to_right, right_to_left, vector_aware, armadillo])
    def test_every_policy_covers_each_factor_exactly_once(self, policy):
        rng = random.Random(3)
        for _ in range(25):
            length = rng.randint(2, 9)
            sizes = [rng.choice([1, 10, 20, 50, 100]) for _ in range(length + 1)]
            # Avoid a leading/trailing 1 turning everything into scalars: fine either way.
            shapes = _shapes_from_sizes(sizes)
            tree = policy(shapes)
            leaves = []

            def collect(node):
                if isinstance(node, int):
                    leaves.append(node)
                else:
                    collect(node[0])
                    collect(node[1])

            collect(tree)
            assert sorted(leaves) == list(range(length))

"""Tests for symbolic property inference (paper Section 3.2, Fig. 5/6)."""

from repro.algebra import (
    IdentityMatrix,
    Inverse,
    InverseTranspose,
    Matrix,
    Plus,
    Property,
    Times,
    Transpose,
    ZeroMatrix,
    has_property,
    infer_properties,
    is_diagonal,
    is_lower_triangular,
    is_spd,
    is_symmetric,
    is_upper_triangular,
    properties_after_inverse,
    properties_after_transpose,
)
from repro.algebra.inference import (
    is_banded,
    is_full_rank,
    is_identity,
    is_non_singular,
    is_orthogonal,
    is_spsd,
    is_unit_diagonal,
    is_zero,
)

L = Matrix("L", 6, 6, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
L2 = Matrix("L2", 6, 6, {Property.LOWER_TRIANGULAR})
U = Matrix("U", 6, 6, {Property.UPPER_TRIANGULAR})
D = Matrix("D", 6, 6, {Property.DIAGONAL, Property.NON_SINGULAR})
S = Matrix("S", 6, 6, {Property.SYMMETRIC})
P = Matrix("P", 6, 6, {Property.SPD})
G = Matrix("G", 6, 6, {Property.NON_SINGULAR})
R = Matrix("R", 6, 4, {Property.FULL_RANK})
Q = Matrix("Q", 6, 6, {Property.ORTHOGONAL})


class TestTriangularInference:
    """The inference rules given explicitly in the paper (Fig. 5/6)."""

    def test_leaf_lower_triangular(self):
        assert is_lower_triangular(L)
        assert not is_lower_triangular(U)

    def test_product_of_lower_triangular_is_lower_triangular(self):
        assert is_lower_triangular(Times(L, L2))

    def test_product_of_lower_and_diagonal_is_lower_triangular(self):
        assert is_lower_triangular(Times(L, D))

    def test_transpose_of_lower_is_upper(self):
        assert is_upper_triangular(Transpose(L))
        assert not is_lower_triangular(Transpose(L))

    def test_transpose_of_upper_is_lower(self):
        assert is_lower_triangular(Transpose(U))

    def test_paper_figure5_example(self):
        """A * B^T with A lower and B upper triangular is lower triangular."""
        a = Matrix("A", 6, 6, {Property.LOWER_TRIANGULAR})
        b = Matrix("B", 6, 6, {Property.UPPER_TRIANGULAR})
        assert is_lower_triangular(Times(a, Transpose(b)))

    def test_inverse_of_lower_is_lower(self):
        assert is_lower_triangular(Inverse(L))

    def test_inverse_transpose_of_lower_is_upper(self):
        assert is_upper_triangular(InverseTranspose(L))

    def test_mixed_product_is_not_triangular(self):
        assert not is_lower_triangular(Times(L, U))
        assert not is_upper_triangular(Times(L, U))

    def test_sum_of_lower_triangular_is_lower_triangular(self):
        assert is_lower_triangular(Plus(L, L2))


class TestDiagonalInference:
    def test_leaf(self):
        assert is_diagonal(D)
        assert not is_diagonal(L)

    def test_product_of_diagonals(self):
        d2 = Matrix("D2", 6, 6, {Property.DIAGONAL})
        assert is_diagonal(Times(D, d2))

    def test_transpose_and_inverse_preserve_diagonality(self):
        assert is_diagonal(Transpose(D))
        assert is_diagonal(Inverse(D))

    def test_diagonal_is_both_triangular(self):
        assert is_lower_triangular(D)
        assert is_upper_triangular(D)


class TestSymmetryInference:
    def test_leaf(self):
        assert is_symmetric(S)
        assert not is_symmetric(L)

    def test_transpose_of_symmetric_is_symmetric(self):
        assert is_symmetric(Transpose(S))

    def test_inverse_of_symmetric_is_symmetric(self):
        assert is_symmetric(Inverse(S))

    def test_gram_product_is_symmetric(self):
        a = Matrix("A", 5, 7)
        assert is_symmetric(Times(Transpose(a), a))
        assert is_symmetric(Times(a, Transpose(a)))

    def test_congruence_preserves_symmetry(self):
        """B S B^T is symmetric -- the L^-1 A L^-T example of Section 3.2."""
        b = Matrix("B", 6, 6)
        assert is_symmetric(Times(b, S, Transpose(b)))

    def test_generalized_eigenproblem_reduction_is_symmetric(self):
        """L^-1 A L^-T with A symmetric is symmetric (Section 3.2)."""
        assert is_symmetric(Times(Inverse(L), S, InverseTranspose(L)))

    def test_product_of_symmetric_matrices_is_not_symmetric_in_general(self):
        s2 = Matrix("S2", 6, 6, {Property.SYMMETRIC})
        assert not is_symmetric(Times(S, s2))

    def test_product_of_diagonals_is_symmetric(self):
        d2 = Matrix("D2", 6, 6, {Property.DIAGONAL})
        assert is_symmetric(Times(D, d2))

    def test_sum_of_symmetric_is_symmetric(self):
        assert is_symmetric(Plus(S, P))


class TestSpdInference:
    def test_leaf(self):
        assert is_spd(P)
        assert not is_spd(S)

    def test_inverse_of_spd_is_spd(self):
        assert is_spd(Inverse(P))

    def test_gram_of_full_rank_is_spd(self):
        """A^T A with A of full column rank is SPD (Section 3.2 example)."""
        a = Matrix("A", 6, 6, {Property.NON_SINGULAR})
        assert is_spd(Times(Transpose(a), a))

    def test_gram_without_rank_information_is_spsd_not_spd(self):
        a = Matrix("A", 6, 4)
        expr = Times(Transpose(a), a)
        assert is_spsd(expr)
        assert not is_spd(expr)

    def test_congruence_with_nonsingular_preserves_spd(self):
        assert is_spd(Times(G, P, Transpose(G)))

    def test_congruence_of_inverse_triangular_preserves_spd(self):
        assert is_spd(Times(Inverse(L), P, InverseTranspose(L)))

    def test_sum_of_spd_is_spd(self):
        p2 = Matrix("P2", 6, 6, {Property.SPD})
        assert is_spd(Plus(P, p2))

    def test_spd_implies_symmetric_via_has_property(self):
        assert has_property(P, Property.SYMMETRIC)


class TestOtherPredicates:
    def test_zero_propagation_through_product(self):
        z = ZeroMatrix(6, 6)
        assert is_zero(Times(z, G))
        assert is_zero(Times(G, z))

    def test_sum_with_zero_is_not_zero(self):
        z = ZeroMatrix(6, 6)
        assert not is_zero(Plus(z, G))

    def test_identity_product(self):
        identity = IdentityMatrix(6)
        assert is_identity(Times(identity, identity))
        assert not is_identity(Times(identity, G))

    def test_orthogonal_product(self):
        q2 = Matrix("Q2", 6, 6, {Property.ORTHOGONAL})
        assert is_orthogonal(Times(Q, q2))
        assert is_orthogonal(Transpose(Q))
        assert is_orthogonal(Inverse(Q))

    def test_non_singular_product(self):
        assert is_non_singular(Times(G, P))
        assert not is_non_singular(Times(G, S))

    def test_full_rank_from_non_singular(self):
        assert is_full_rank(G)
        assert is_full_rank(Inverse(G))

    def test_banded_for_diagonal(self):
        assert is_banded(D)

    def test_unit_diagonal_product(self):
        l_unit = Matrix("L1", 6, 6, {Property.LOWER_TRIANGULAR, Property.UNIT_DIAGONAL})
        l_unit2 = Matrix("L2u", 6, 6, {Property.LOWER_TRIANGULAR, Property.UNIT_DIAGONAL})
        assert is_unit_diagonal(Times(l_unit, l_unit2))
        assert not is_unit_diagonal(Times(l_unit, L))


class TestInferProperties:
    def test_returns_closed_set(self):
        inferred = infer_properties(Times(Transpose(R), R))
        assert Property.SYMMETRIC in inferred
        assert Property.SQUARE in inferred

    def test_vector_and_scalar_bookkeeping(self):
        v = Matrix("v", 6, 1)
        w = Matrix("w", 6, 1)
        assert Property.SCALAR in infer_properties(Times(Transpose(v), w))
        assert Property.VECTOR in infer_properties(Times(S, v))

    def test_triangular_product_inference(self):
        inferred = infer_properties(Times(L, D))
        assert Property.LOWER_TRIANGULAR in inferred

    def test_plain_product_has_no_structural_properties(self):
        a = Matrix("A", 6, 5)
        b = Matrix("B", 5, 7)
        inferred = infer_properties(Times(a, b))
        assert Property.LOWER_TRIANGULAR not in inferred
        assert Property.SYMMETRIC not in inferred


class TestPropertySetTransforms:
    def test_transpose_swaps_triangularity(self):
        props = frozenset({Property.LOWER_TRIANGULAR})
        assert Property.UPPER_TRIANGULAR in properties_after_transpose(props)
        assert Property.LOWER_TRIANGULAR not in properties_after_transpose(props)

    def test_transpose_preserves_symmetric(self):
        props = frozenset({Property.SYMMETRIC})
        assert Property.SYMMETRIC in properties_after_transpose(props)

    def test_inverse_preserves_structure(self):
        props = frozenset({Property.SPD})
        after = properties_after_inverse(props)
        assert Property.SPD in after
        assert Property.NON_SINGULAR in after

    def test_inverse_drops_zero(self):
        after = properties_after_inverse(frozenset({Property.LOWER_TRIANGULAR}))
        assert Property.LOWER_TRIANGULAR in after

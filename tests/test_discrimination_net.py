"""Tests for the many-to-one discrimination-net matcher."""

from repro.algebra import Inverse, Matrix, Property, Times, Transpose
from repro.matching import DiscriminationNet, Pattern, Wildcard, property_constraint

A = Matrix("A", 5, 5, {Property.LOWER_TRIANGULAR})
B = Matrix("B", 5, 3)
S = Matrix("S", 5, 5, {Property.SPD})


def _patterns():
    gemm = Pattern(Times(Wildcard("X"), Wildcard("Y")), name="gemm")
    trmm = Pattern(
        Times(Wildcard("X"), Wildcard("Y")),
        constraints=[property_constraint("X", Property.LOWER_TRIANGULAR)],
        name="trmm",
    )
    trsm = Pattern(
        Times(Inverse(Wildcard("X")), Wildcard("Y")),
        constraints=[property_constraint("X", Property.LOWER_TRIANGULAR)],
        name="trsm",
    )
    gemm_tn = Pattern(Times(Transpose(Wildcard("X")), Wildcard("Y")), name="gemm_tn")
    syrk = Pattern(Times(Transpose(Wildcard("X")), Wildcard("X")), name="syrk")
    return [gemm, trmm, trsm, gemm_tn, syrk]


class TestDiscriminationNet:
    def test_size(self):
        net = DiscriminationNet((pattern, pattern.name) for pattern in _patterns())
        assert len(net) == 5

    def test_multiple_patterns_match_same_subject(self):
        net = DiscriminationNet((p, p.name) for p in _patterns())
        names = {payload for _, _, payload in net.match(Times(A, B))}
        assert names == {"gemm", "trmm"}

    def test_constraint_excludes_pattern(self):
        net = DiscriminationNet((p, p.name) for p in _patterns())
        names = {payload for _, _, payload in net.match(Times(B, Matrix("C", 3, 3)))}
        assert names == {"gemm"}

    def test_unary_wrapped_subject(self):
        net = DiscriminationNet((p, p.name) for p in _patterns())
        names = {payload for _, _, payload in net.match(Times(Inverse(A), B))}
        # ``gemm``'s unrestricted wildcard binds X to the whole sub-tree A^-1
        # and the inverse of a lower-triangular matrix is still lower
        # triangular, so the generic ``trmm`` pattern matches as well; only
        # the leaf-restricted wildcards of the real kernel catalog rule that
        # out (covered in test_kernels.py).
        assert names == {"gemm", "trmm", "trsm"}

    def test_transposed_subject(self):
        net = DiscriminationNet((p, p.name) for p in _patterns())
        names = {payload for _, _, payload in net.match(Times(Transpose(B), Matrix("C", 5, 4)))}
        assert names == {"gemm", "gemm_tn"}

    def test_nonlinear_pattern(self):
        net = DiscriminationNet((p, p.name) for p in _patterns())
        names = {payload for _, _, payload in net.match(Times(Transpose(B), B))}
        assert "syrk" in names
        names_different = {
            payload for _, _, payload in net.match(Times(Transpose(B), Matrix("B2", 5, 3)))
        }
        assert "syrk" not in names_different

    def test_substitutions_are_returned(self):
        net = DiscriminationNet((p, p.name) for p in _patterns())
        for _, substitution, payload in net.match(Times(A, B)):
            assert substitution["X"] == A
            assert substitution["Y"] == B

    def test_no_match_for_single_leaf(self):
        net = DiscriminationNet((p, p.name) for p in _patterns())
        assert list(net.match(A)) == []

    def test_match_first(self):
        net = DiscriminationNet((p, p.name) for p in _patterns())
        assert net.match_first(Times(A, B)) is not None
        assert net.match_first(Inverse(A)) is None

    def test_incremental_add(self):
        net = DiscriminationNet()
        assert len(net) == 0
        net.add(Pattern(Inverse(Wildcard("X")), name="inv"), "inv")
        assert len(net) == 1
        assert {p for _, _, p in net.match(Inverse(S))} == {"inv"}

    def test_results_match_naive_matching(self):
        """The net must agree with matching every pattern individually."""
        from repro.matching import match as single_match

        patterns = _patterns()
        net = DiscriminationNet((p, p.name) for p in patterns)
        subjects = [
            Times(A, B),
            Times(Inverse(A), B),
            Times(Transpose(B), B),
            Times(S, B),
            Times(Transpose(B), Matrix("C", 5, 7)),
            Inverse(S),
            A,
        ]
        for subject in subjects:
            net_names = {payload for _, _, payload in net.match(subject)}
            naive_names = {p.name for p in patterns if single_match(p, subject) is not None}
            assert net_names == naive_names

    def test_wildcard_payloads_default_to_none(self):
        net = DiscriminationNet()
        net.add(Pattern(Wildcard("X"), name="any"))
        results = list(net.match(A))
        assert results[0][2] is None

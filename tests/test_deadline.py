"""Tests for per-request deadline enforcement (``CompileOptions.deadline_s``).

The DP loops of both solvers check the deadline at cell boundaries: an
expired budget returns the best-so-far solution marked ``complete=False``
instead of either ignoring the budget (the pre-enforcement placeholder
behavior) or raising.  The marker travels through the service wire as
``AssignmentResult.complete``.
"""

import pytest

from repro.core import GMCAlgorithm
from repro.core.topdown import TopDownGMC
from repro.experiments.workload import ChainGenerator
from repro.options import CompileOptions
from repro.service.api import AssignmentResult, CompileRequest, execute_request

SOLVERS = [GMCAlgorithm, TopDownGMC]


def long_chain(seed=3, length=12):
    generator = ChainGenerator(
        min_length=length,
        max_length=length,
        size_choices=(40, 80, 120, 200),
        square_probability=0.45,
        transpose_probability=0.25,
        inverse_probability=0.25,
        property_probability=0.60,
        seed=seed,
    )
    return generator.generate_many(1)[0].expression


@pytest.mark.parametrize("solver_cls", SOLVERS)
class TestDeadlineEnforcement:
    def test_expired_deadline_returns_best_so_far(self, solver_cls):
        solver = solver_cls(CompileOptions(deadline_s=1e-9))
        solution = solver.solve(long_chain())
        assert solution.complete is False  # budget expired mid-solve

    def test_expired_uncomputable_solve_blames_the_deadline(self, solver_cls):
        from repro.core import UncomputableChainError

        solver = solver_cls(CompileOptions(deadline_s=1e-9))
        solution = solver.solve(long_chain())
        if solution.computable:  # pragma: no cover -- machine-speed dependent
            pytest.skip("solve finished a computable prefix within the budget")
        with pytest.raises(UncomputableChainError, match="deadline expired"):
            solution.program()

    def test_execute_request_error_names_the_deadline(self, solver_cls):
        from repro.service.api import CompileRequest, execute_request

        solver_name = "gmc" if solver_cls.__name__ == "GMCAlgorithm" else "topdown"
        request = CompileRequest(
            source=(
                "Matrix A (50, 50) <>\nMatrix B (50, 50) <>\n"
                "Matrix C (50, 50) <>\nMatrix D (50, 50) <>\n"
                "X := A * B * C * D\n"
            ),
            options=CompileOptions(solver=solver_name, deadline_s=1e-9),
        )
        response = execute_request(request)
        assert response.ok is False
        assert "deadline expired" in response.error

    def test_roomy_deadline_is_complete_and_optimal(self, solver_cls):
        expression = long_chain(seed=5, length=8)
        with_budget = solver_cls(CompileOptions(deadline_s=300.0)).solve(expression)
        reference = solver_cls(CompileOptions()).solve(expression)
        assert with_budget.complete is True
        assert with_budget.computable == reference.computable
        if reference.computable:
            assert with_budget.parenthesization() == reference.parenthesization()
            assert float(with_budget.optimal_cost) == pytest.approx(
                float(reference.optimal_cost)
            )

    def test_no_deadline_is_always_complete(self, solver_cls):
        solution = solver_cls(CompileOptions()).solve(long_chain(seed=9, length=6))
        assert solution.complete is True


class TestDeadlineOnTheWire:
    def test_complete_marker_roundtrips(self):
        result = AssignmentResult(
            target="X",
            expression="A * B",
            kernels=["GEMM"],
            parenthesization="(A * B)",
            cost=1.0,
            flops=1.0,
            generation_time_s=0.0,
            complete=False,
        )
        assert result.to_dict()["complete"] is False
        assert AssignmentResult.from_dict(result.to_dict()).complete is False
        # Absent on old payloads -> assumed complete.
        legacy = {k: v for k, v in result.to_dict().items() if k != "complete"}
        assert AssignmentResult.from_dict(legacy).complete is True

    def test_execute_request_reports_complete_solves(self):
        request = CompileRequest(
            source="Matrix A (20, 20) <spd>\nMatrix B (20, 10) <>\nX := A^-1 * B\n",
            options=CompileOptions(deadline_s=300.0),
        )
        response = execute_request(request)
        assert response.ok
        assert response.assignments[0].complete is True

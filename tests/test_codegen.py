"""Tests for the Julia and NumPy code generators (paper Section 3.5, Table 2)."""

import numpy as np

from repro.algebra import Inverse, Matrix, Property, Times, Transpose
from repro.codegen import (
    generate_julia,
    generate_numpy,
    julia_call_sequence,
    numpy_statement_sequence,
)
from repro.core import generate_program
from repro.runtime import instantiate_expression, evaluate


def _table2_program():
    a = Matrix("A", 12, 12, {Property.SPD})
    b = Matrix("B", 12, 9)
    c = Matrix("C", 9, 9, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})
    expr = Times(Inverse(a), b, Transpose(c))
    return expr, generate_program(expr)


class TestJuliaGeneration:
    def test_function_wrapper(self):
        _, program = _table2_program()
        code = generate_julia(program, function_name="solve_chain")
        assert code.startswith("function solve_chain(")
        assert code.rstrip().endswith("end")

    def test_contains_blas_style_calls(self):
        _, program = _table2_program()
        code = generate_julia(program)
        assert "trmm!" in code
        assert "posv!" in code

    def test_call_sequence_matches_program_length(self):
        _, program = _table2_program()
        assert len(julia_call_sequence(program)) == len(program.calls)

    def test_input_operands_appear_in_signature(self):
        _, program = _table2_program()
        header = generate_julia(program).splitlines()[0]
        for name in ("A", "B", "C"):
            assert name in header

    def test_return_statement_references_output(self):
        _, program = _table2_program()
        code = generate_julia(program)
        assert f"return {program.output.name}" in code

    def test_comments_carry_symbolic_expressions(self):
        _, program = _table2_program()
        code = generate_julia(program)
        assert "B * C^T" in code


class TestNumpyGeneration:
    def test_generated_source_is_executable_and_correct(self):
        expr, program = _table2_program()
        source = generate_numpy(program, function_name="compute_chain")
        namespace = {}
        exec(compile(source, "<generated>", "exec"), namespace)
        compute = namespace["compute_chain"]
        env = instantiate_expression(expr, seed=7)
        # Argument order follows first-use order in the program.
        import inspect

        arguments = [env[name] for name in inspect.signature(compute).parameters]
        result = compute(*arguments)
        np.testing.assert_allclose(result, evaluate(expr, env), rtol=1e-8, atol=1e-8)

    def test_statement_sequence_matches_program(self):
        _, program = _table2_program()
        statements = numpy_statement_sequence(program)
        assert len(statements) == len(program.calls)
        assert any("cholesky_solve" in statement for statement in statements)

    def test_docstring_mentions_expression(self):
        expr, program = _table2_program()
        assert str(expr) in generate_numpy(program)

    def test_plain_product_generated_code(self):
        expr = Times(Matrix("A", 6, 5), Matrix("B", 5, 4))
        program = generate_program(expr)
        source = generate_numpy(program)
        assert "A @ B" in source

    def test_transposed_operand_spelled_with_dot_t(self):
        expr = Times(Transpose(Matrix("A", 5, 6)), Matrix("B", 5, 4))
        program = generate_program(expr)
        assert "A.T @ B" in generate_numpy(program)

    def test_generated_functions_for_various_chains_execute(self):
        chains = [
            Times(Matrix("A", 7, 6), Matrix("B", 6, 5), Matrix("C", 5, 4)),
            Times(
                Inverse(Matrix("L", 6, 6, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})),
                Matrix("B", 6, 5),
            ),
            Times(Matrix("B", 5, 6), Inverse(Matrix("G", 6, 6, {Property.NON_SINGULAR}))),
        ]
        import inspect

        for expr in chains:
            program = generate_program(expr)
            source = generate_numpy(program, function_name="f")
            namespace = {}
            exec(compile(source, "<generated>", "exec"), namespace)
            env = instantiate_expression(expr, seed=11)
            arguments = [env[name] for name in inspect.signature(namespace["f"]).parameters]
            np.testing.assert_allclose(
                namespace["f"](*arguments), evaluate(expr, env), rtol=1e-7, atol=1e-7
            )

"""Tests for the experiment harness and the figure/table reproductions."""

import math

import pytest

from repro.baselines import baseline_strategies
from repro.experiments.figures import figure8, figure9, generation_time
from repro.experiments.harness import (
    GMC_NAME,
    HarnessConfig,
    run_experiment,
    run_problem,
)
from repro.experiments.tables import table1, table2
from repro.experiments.tail_cases import left_to_right_analysis, vector_tail_analysis
from repro.experiments.worked_examples import (
    completeness_example,
    section32_property_example,
    section33_cost_function_example,
)
from repro.experiments.workload import ChainGenerator

#: A small but representative batch used throughout these tests.
_GENERATOR = ChainGenerator(
    min_length=3, max_length=6, size_choices=(20, 40, 60), seed=123
)
_PROBLEMS = _GENERATOR.generate_many(8)


@pytest.fixture(scope="module")
def experiment():
    config = HarnessConfig(execute=True, validate=True, seed=0)
    return run_experiment(_PROBLEMS, config=config)


class TestRunProblem:
    def test_all_strategies_present(self):
        result = run_problem(_PROBLEMS[0])
        assert GMC_NAME in result.results
        for strategy in baseline_strategies():
            assert strategy.name in result.results

    def test_generation_time_recorded(self):
        result = run_problem(_PROBLEMS[0])
        assert result.generation_time > 0.0

    def test_gmc_flops_never_worse_than_baselines(self):
        for problem in _PROBLEMS:
            result = run_problem(problem)
            gmc_flops = result.gmc.flops
            for name, strategy_result in result.results.items():
                if name == GMC_NAME or strategy_result.failed:
                    continue
                assert strategy_result.flops >= gmc_flops - 1e-6

    def test_speedup_over_baseline_is_at_least_one_for_modeled_time(self):
        result = run_problem(_PROBLEMS[1])
        for strategy in baseline_strategies():
            speedup = result.speedup_over(strategy.name)
            assert speedup is None or speedup >= 0.99

    def test_fastest_strategy_returns_a_known_name(self):
        result = run_problem(_PROBLEMS[2])
        assert result.fastest_strategy() in result.results


class TestExperimentResult:
    def test_every_program_validates_numerically(self, experiment):
        summary = experiment.correctness_summary()
        for strategy, (correct, checked) in summary.items():
            assert checked > 0, strategy
            assert correct == checked, f"{strategy}: {correct}/{checked} correct"

    def test_average_speedups_cover_all_baselines(self, experiment):
        speedups = experiment.average_speedups()
        assert set(speedups) == {s.name for s in baseline_strategies()}
        assert all(value >= 0.99 for value in speedups.values())

    def test_measured_speedups_are_positive(self, experiment):
        speedups = experiment.average_speedups(use_measured=True)
        assert all(value > 0.0 for value in speedups.values())

    def test_execution_time_table_is_sorted_by_gmc(self, experiment):
        rows = experiment.execution_time_table()
        gmc_times = [row[GMC_NAME] for row in rows]
        assert gmc_times == sorted(gmc_times)

    def test_fraction_gmc_fastest_modeled_is_high(self, experiment):
        assert experiment.fraction_gmc_fastest() >= 0.8

    def test_worst_case_ratio_modeled_is_one(self, experiment):
        assert experiment.worst_case_ratio() == pytest.approx(1.0)

    def test_generation_time_statistics(self, experiment):
        stats = experiment.generation_time_statistics()
        assert 0.0 < stats["mean"] < 1.0
        assert stats["max"] >= stats["mean"] >= stats["min"]


class TestFigures:
    def test_figure8_uses_prebuilt_experiment(self, experiment):
        result = figure8(experiment=experiment)
        assert result.name == "figure8"
        assert "Figure 8" in result.text
        assert result.data["overall_average"] >= 1.0

    def test_figure9_statistics(self, experiment):
        result = figure9(experiment=experiment)
        data = result.data
        assert 0.0 <= data["fraction_gmc_fastest"] <= 1.0
        assert data["worst_case_ratio"] >= 1.0
        assert "Figure 9" in result.text

    def test_generation_time_figure(self):
        result = generation_time(count=5, seed=1, full_scale=False)
        assert result.data["count"] == 5
        assert result.data["max"] < 1.0
        assert "Generation-time" in result.text


class TestTables:
    def test_table1_rows_match_paper(self):
        result = table1()
        names = [row["name"] for row in result.rows]
        assert names == ["GEMM", "TRMM", "SYMM", "TRSM", "SYRK"]
        assert "Table 1" in result.text

    def test_table2_gmc_row_uses_trmm_and_posv(self):
        result = table2(n=60, m=40)
        gmc_row = result.rows[0]
        assert gmc_row["name"] == "GMC"
        assert gmc_row["kernel_families"] == "TRMM -> POSV"

    def test_table2_has_all_ten_rows(self):
        result = table2(n=60, m=40)
        assert len(result.rows) == 10
        assert result.rows[0]["flops"] <= min(row["flops"] for row in result.rows[1:])

    def test_table2_naive_rows_are_most_expensive(self):
        result = table2(n=60, m=40)
        flops = {row["name"]: row["flops"] for row in result.rows}
        assert flops["Jl n"] > flops["Jl r"]
        assert flops["Eig n"] > flops["Eig r"]


class TestWorkedExamples:
    def test_section32_numbers(self):
        example = section32_property_example()
        data = example.data
        assert data["right_first_general"] == pytest.approx(24000)
        assert data["left_first_general"] == pytest.approx(28000)
        assert data["left_first_symm"] == pytest.approx(22000)
        assert data["gmc_flops"] <= 22000
        assert data["gmc_parenthesization"] == "((A^T * A) * B)"
        assert data["gmc_generic_parenthesization"] == "(A^T * (A * B))"

    def test_section33_numbers(self):
        example = section33_cost_function_example()
        data = example.data
        assert data["flop_optimal_cost"] == pytest.approx(3.16e8, rel=0.01)
        assert data["time_optimal_flops"] == pytest.approx(3.32e8, rel=0.01)
        assert data["flop_optimal_parenthesization"] == "((((A * B) * C) * D) * E)"

    def test_completeness_example(self):
        example = completeness_example()
        assert example.data["three_factor_computable"] is True
        assert example.data["two_factor_computable"] is False
        assert example.data["two_factor_with_gesv2_computable"] is True


class TestTailCases:
    def test_vector_tail_family_matches_heuristic_baselines(self):
        analysis = vector_tail_analysis(count=3, seed=0)
        for row in analysis.rows:
            assert row["Arma n"] == pytest.approx(row["GMC"])
            assert row["Bl n"] == pytest.approx(row["GMC"])
            assert row["Jl n"] > row["GMC"]

    def test_left_to_right_family_everyone_is_close_to_gmc(self):
        """On chains where left-to-right is (nearly) optimal, every strategy
        needs about the same FLOPs as GMC (Section 4 tail analysis)."""
        analysis = left_to_right_analysis(count=3, seed=0)
        for row in analysis.rows:
            for label in ("Jl n", "Mat n", "Eig n"):
                assert row[label] <= 1.2 * row["GMC"]

"""Tests for the plain-text reporting helpers (tables, charts, CSV)."""

import math

from repro.experiments.reporting import bar_chart, format_table, series_chart, to_csv


class TestFormatTable:
    def test_headers_and_rows_render(self):
        text = format_table(["name", "value"], [["a", 1.5], ["b", 2.0]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "a" in lines[2]

    def test_float_formatting(self):
        text = format_table(["x"], [[1234.5678]])
        assert "1235" in text or "1234" in text

    def test_infinite_and_nan_values(self):
        text = format_table(["x"], [[math.inf], [math.nan]])
        assert "inf" in text
        assert "-" in text

    def test_column_widths_accommodate_long_cells(self):
        text = format_table(["short"], [["a very long cell value"]])
        assert "a very long cell value" in text


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart({"small": 1.0, "large": 10.0}, width=20)
        small_line = next(line for line in chart.splitlines() if line.startswith("small"))
        large_line = next(line for line in chart.splitlines() if line.startswith("large"))
        assert large_line.count("#") > small_line.count("#")

    def test_title_is_included(self):
        assert bar_chart({"x": 1.0}, title="My chart").startswith("My chart")

    def test_values_are_printed(self):
        assert "3.50" in bar_chart({"x": 3.5})

    def test_infinite_values_do_not_crash(self):
        chart = bar_chart({"x": math.inf, "y": 2.0})
        assert "inf" in chart


class TestSeriesChart:
    def test_renders_grid_and_legend(self):
        rows = [{"GMC": 0.001 * (i + 1), "Jl n": 0.002 * (i + 1)} for i in range(10)]
        chart = series_chart(rows, ["GMC", "Jl n"], height=8)
        assert "legend:" in chart
        assert "G" in chart

    def test_handles_missing_values(self):
        rows = [{"GMC": 0.001}, {"GMC": float("nan")}, {"GMC": 0.01}]
        chart = series_chart(rows, ["GMC"], height=5)
        assert "legend" in chart

    def test_empty_data(self):
        assert series_chart([], ["GMC"]) == "(no data)"


class TestCsv:
    def test_round_trip(self):
        rows = [{"problem": "p1", "GMC": 1.0}, {"problem": "p2", "GMC": 2.0}]
        text = to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "problem,GMC"
        assert lines[1].startswith("p1")
        assert len(lines) == 3

    def test_empty_rows(self):
        assert to_csv([]) == ""

    def test_explicit_fieldnames_filter_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = to_csv(rows, fieldnames=["a"])
        assert "b" not in text.splitlines()[0]

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra import Matrix, Property, Vector
from repro.kernels import default_catalog


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "parallel: intra-solve parallelism suite (serial/parallel identity, "
        "deadline truncation, CLI and telemetry wiring); runs in tier-1 CI.",
    )


@pytest.fixture
def catalog():
    """The default kernel catalog (cached at module level by the library)."""
    return default_catalog()


@pytest.fixture
def spd_matrix():
    return Matrix("A", 8, 8, {Property.SPD})


@pytest.fixture
def lower_matrix():
    return Matrix("L", 8, 8, {Property.LOWER_TRIANGULAR, Property.NON_SINGULAR})


@pytest.fixture
def upper_matrix():
    return Matrix("U", 8, 8, {Property.UPPER_TRIANGULAR, Property.NON_SINGULAR})


@pytest.fixture
def general_square():
    return Matrix("G", 8, 8, {Property.NON_SINGULAR})


@pytest.fixture
def rectangular():
    return Matrix("B", 8, 5)


@pytest.fixture
def column_vector():
    return Vector("v", 5)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)

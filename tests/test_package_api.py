"""Tests for the top-level package API, the figures/tables CLIs and docstrings."""

import subprocess
import sys

import pytest

import repro
from repro.experiments import figures, tables


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_snippet_works(self):
        """The snippet shown in README.md / the package docstring."""
        from repro import Matrix, Property, generate_program

        a = Matrix("A", 100, 100, {Property.SPD})
        b = Matrix("B", 100, 50)
        c = Matrix("C", 50, 50, {Property.LOWER_TRIANGULAR})
        program = generate_program(a.I * b * c.T)
        assert len(program.calls) == 2

    def test_package_docstring_example(self):
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_subpackages_importable(self):
        import repro.algebra
        import repro.baselines
        import repro.codegen
        import repro.core
        import repro.cost
        import repro.experiments
        import repro.frontend
        import repro.kernels
        import repro.matching
        import repro.runtime

        for module in (
            repro.algebra,
            repro.matching,
            repro.kernels,
            repro.cost,
            repro.core,
            repro.codegen,
            repro.runtime,
            repro.baselines,
            repro.experiments,
            repro.frontend,
        ):
            assert module.__doc__, module.__name__


class TestDocstringCoverage:
    def test_public_functions_and_classes_are_documented(self):
        """Every public item reachable from the sub-package __init__ modules
        carries a docstring."""
        import inspect

        modules = [
            repro.algebra,
            repro.matching,
            repro.kernels,
            repro.cost,
            repro.core,
            repro.codegen,
            repro.runtime,
            repro.baselines,
            repro.experiments,
            repro.frontend,
        ]
        undocumented = []
        for module in modules:
            for name in getattr(module, "__all__", []):
                item = getattr(module, name)
                if inspect.isfunction(item) or inspect.isclass(item):
                    if not (item.__doc__ or "").strip():
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"


class TestCommandLineInterfaces:
    def _run_module(self, module, *arguments):
        return subprocess.run(
            [sys.executable, "-m", module, *arguments],
            capture_output=True,
            text=True,
            check=False,
        )

    def test_tables_cli(self):
        completed = self._run_module("repro.experiments.tables", "table1")
        assert completed.returncode == 0
        assert "GEMM" in completed.stdout

    def test_figures_cli_small_run(self):
        completed = self._run_module(
            "repro.experiments.figures", "fig8", "--count", "4", "--seed", "3"
        )
        assert completed.returncode == 0
        assert "Figure 8" in completed.stdout

    def test_figures_main_function(self, capsys):
        assert figures.main(["gentime", "--count", "3"]) == 0
        assert "Generation-time" in capsys.readouterr().out

    def test_tables_main_function(self, capsys):
        assert tables.main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_figure9_csv_export(self):
        result = figures.figure9(count=3, seed=1)
        csv_text = figures.export_figure9_csv(result)
        assert csv_text.splitlines()[0].startswith("problem")
        assert len(csv_text.splitlines()) == 4


class TestExamples:
    """The example scripts are part of the public surface; smoke-test the
    fast ones end to end."""

    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "dsl_compiler.py", "cost_metrics.py"],
    )
    def test_example_runs(self, script):
        completed = subprocess.run(
            [sys.executable, f"examples/{script}"],
            capture_output=True,
            text=True,
            check=False,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip()

"""Every pre-options call-shape still works, identically, with ONE warning.

The PR 4 API redesign keeps the legacy entry shapes alive through thin
shims that forward to the CompileOptions/Compiler API: each legacy call
must (a) raise exactly one :class:`DeprecationWarning`, and (b) return the
same kernel sequences as the canonical options-based spelling.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import CompileOptions, Compiler, compile_source
from repro.core import GMCAlgorithm, TopDownGMC
from repro.cost import FlopCount
from repro.frontend.compiler import compile_program
from repro.algebra.dsl import parse_program
from repro.kernels import default_catalog
from repro.service.api import CompileRequest, RequestError, execute_request

SOURCE = """
Matrix A (200, 200) <SPD>
Matrix B (200, 100) <>
Matrix C (100, 100) <LowerTriangular, NonSingular>
X := A^-1 * B * C^T
"""

CHAIN = parse_program(SOURCE).expression("X")


def one_deprecation(func):
    """Run *func*, assert exactly one DeprecationWarning, return its result."""
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        result = func()
    deprecations = [
        entry for entry in record if issubclass(entry.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got "
        f"{[str(entry.message) for entry in deprecations]}"
    )
    return result


def no_deprecation(func):
    """Run *func*, assert NO DeprecationWarning, return its result."""
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        result = func()
    deprecations = [
        entry for entry in record if issubclass(entry.category, DeprecationWarning)
    ]
    assert not deprecations, [str(entry.message) for entry in deprecations]
    return result


class TestCompileSourceShim:
    def test_metric_keyword_warns_once_and_matches(self):
        legacy = one_deprecation(lambda: compile_source(SOURCE, metric="time"))
        canonical = no_deprecation(
            lambda: Compiler(CompileOptions(metric="time")).compile(SOURCE)
        )
        assert legacy.assignment("X").kernel_sequence == canonical.assignment(
            "X"
        ).kernel_sequence

    def test_catalog_keyword_warns_once_and_matches(self):
        catalog = default_catalog(include_specialized=False)
        legacy = one_deprecation(lambda: compile_source(SOURCE, catalog=catalog))
        canonical = no_deprecation(
            lambda: Compiler(CompileOptions(catalog=catalog)).compile(SOURCE)
        )
        assert legacy.assignment("X").kernel_sequence == canonical.assignment(
            "X"
        ).kernel_sequence

    def test_bare_call_is_not_deprecated(self):
        no_deprecation(lambda: compile_source(SOURCE))

    def test_options_keyword_is_not_deprecated(self):
        result = no_deprecation(
            lambda: compile_source(SOURCE, options=CompileOptions(solver="topdown"))
        )
        assert result.assignment("X").kernel_sequence == ["TRMM", "POSV"]

    def test_mixing_options_and_legacy_kwargs_raises(self):
        with pytest.raises(TypeError):
            compile_source(SOURCE, metric="time", options=CompileOptions())

    def test_compile_program_shim(self):
        program = parse_program(SOURCE)
        legacy = one_deprecation(lambda: compile_program(program, metric="flops"))
        assert legacy.assignment("X").kernel_sequence == ["TRMM", "POSV"]


class TestSolverShims:
    @pytest.mark.parametrize("solver_cls", [GMCAlgorithm, TopDownGMC])
    def test_loose_kwargs_warn_once_and_match(self, solver_cls):
        legacy = one_deprecation(
            lambda: solver_cls(metric=FlopCount(), prune=False).solve(CHAIN)
        )
        canonical = no_deprecation(
            lambda: solver_cls(
                CompileOptions(metric=FlopCount(), prune=False)
            ).solve(CHAIN)
        )
        assert legacy.kernel_sequence() == canonical.kernel_sequence()
        assert float(legacy.optimal_cost) == float(canonical.optimal_cost)

    @pytest.mark.parametrize("solver_cls", [GMCAlgorithm, TopDownGMC])
    def test_catalog_keyword_warns_once(self, solver_cls):
        solver = one_deprecation(lambda: solver_cls(catalog=default_catalog()))
        assert solver.catalog is default_catalog()

    def test_positional_catalog_warns_once(self):
        solver = one_deprecation(lambda: GMCAlgorithm(default_catalog()))
        assert solver.catalog is default_catalog()

    @pytest.mark.parametrize("solver_cls", [GMCAlgorithm, TopDownGMC])
    def test_bare_constructor_is_not_deprecated(self, solver_cls):
        no_deprecation(solver_cls)

    def test_mixing_options_and_legacy_kwargs_raises(self):
        with pytest.raises(TypeError):
            GMCAlgorithm(CompileOptions(), metric="flops")


class TestCompileRequestShims:
    LEGACY_WIRE = {
        "source": SOURCE,
        "metric": "flops",
        "solver": "topdown",
        "emit": ["julia"],
        "prune": False,
        "use_match_cache": False,
        "request_id": "pr3-wire-dict",
    }

    def test_constructor_kwargs_warn_once_and_fold_into_options(self):
        request = one_deprecation(
            lambda: CompileRequest(
                source=SOURCE,
                metric="flops",
                solver="topdown",
                emit=("julia",),
                prune=False,
                use_match_cache=False,
            )
        )
        assert request.options == CompileOptions(
            metric="flops",
            solver="topdown",
            emit=("julia",),
            prune=False,
            match_cache=False,
        )

    def test_pr3_wire_dict_warns_once_and_matches_new_format(self):
        legacy_request = one_deprecation(
            lambda: CompileRequest.from_dict(dict(self.LEGACY_WIRE))
        )
        new_wire = {
            "source": SOURCE,
            "request_id": "new-wire-dict",
            "options": {
                "metric": "flops",
                "solver": "topdown",
                "emit": ["julia"],
                "prune": False,
                "match_cache": False,
            },
        }
        new_request = no_deprecation(lambda: CompileRequest.from_dict(new_wire))
        assert legacy_request.options == new_request.options

        legacy_response = execute_request(legacy_request)
        new_response = execute_request(new_request)
        assert legacy_response.ok and new_response.ok
        assert legacy_response.kernel_sequences == new_response.kernel_sequences

        def normalized(code: str) -> str:
            # Temporary names draw from a process-global counter, so two
            # compilations of the same source differ only in T<n> numbering.
            import re

            return re.sub(r"\bT\d+\b", "T#", code)

        assert normalized(legacy_response.assignment("X").code["julia"]) == normalized(
            new_response.assignment("X").code["julia"]
        )

    def test_roundtrip_emits_the_new_wire_format(self):
        legacy_request = one_deprecation(
            lambda: CompileRequest.from_dict(dict(self.LEGACY_WIRE))
        )
        payload = json.loads(json.dumps(legacy_request.to_dict()))
        assert "options" in payload and "metric" not in payload
        clone = no_deprecation(lambda: CompileRequest.from_dict(payload))
        assert clone == legacy_request

    def test_flat_and_nested_options_cannot_be_mixed(self):
        with pytest.raises(RequestError):
            CompileRequest.from_dict(
                {"source": SOURCE, "metric": "flops", "options": {"solver": "gmc"}}
            )

    def test_new_format_requests_do_not_warn(self):
        no_deprecation(
            lambda: CompileRequest.from_dict(
                {"source": SOURCE, "options": {"solver": "gmc"}}
            )
        )
        no_deprecation(lambda: CompileRequest.from_dict({"source": SOURCE}))
        no_deprecation(lambda: CompileRequest(source=SOURCE))

    def test_wire_warning_is_not_attributed_to_repro_internals(self):
        """A legacy wire payload originates from the remote client; its
        warning must survive the CI gate that errors on DeprecationWarnings
        attributed to repro.* modules, even when from_dict is invoked from
        library code (HTTP handler, pool worker)."""
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("error", DeprecationWarning)
            # Re-allow the synthetic wire module (mirrors the CI gate which
            # only escalates repro.* attributions).
            warnings.filterwarnings(
                "always", category=DeprecationWarning, module="legacy_wire"
            )
            warnings.filterwarnings(
                "error", category=DeprecationWarning, module=r"repro\..*"
            )
            CompileRequest.from_dict({"source": SOURCE, "metric": "flops"})
        deprecations = [
            entry for entry in record if issubclass(entry.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert deprecations[0].filename == "<legacy wire payload>"

    def test_bad_legacy_options_still_raise_request_errors(self):
        with pytest.raises(RequestError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                CompileRequest.from_dict({"source": SOURCE, "metric": "nonsense"})

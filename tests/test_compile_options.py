"""Tests for the unified CompileOptions / Compiler session API.

Covers the frozen options value (validation, immutability, wire format),
the Compiler session (warm metric instances, per-call overrides, cache
telemetry), the emitter registry, the dict-backed
``CompilationResult.assignment`` lookup, and the cross-entry-point identity
guarantee: the Python API, the CLI, the HTTP-service execution path and the
raw solver sessions build the same options and produce identical kernel
sequences.
"""

from __future__ import annotations

import pytest

from repro import CompileOptions, Compiler, Matrix, Property
from repro.algebra.dsl import parse_program
from repro.codegen import available_emitters, get_emitter, register_emitter, _EMITTERS
from repro.core import GMCAlgorithm, TopDownGMC, make_solver
from repro.cost import FlopCount
from repro.frontend import compile_source, main
from repro.frontend.compiler import CompilationResult, CompiledAssignment
from repro.kernels.catalog import KernelCatalog, build_default_kernels
from repro.service.api import CompileRequest, execute_request

SOURCE = """
Matrix A (200, 200) <SPD>
Matrix B (200, 100) <>
Matrix C (100, 100) <LowerTriangular, NonSingular>
Vector y (100)

X := A^-1 * B * C^T
z := A^-1 * B * y
"""


# ---------------------------------------------------------------------------
# CompileOptions
# ---------------------------------------------------------------------------

class TestCompileOptions:
    def test_defaults(self):
        options = CompileOptions()
        assert options.solver == "gmc"
        assert options.metric == "flops"
        assert options.prune and options.match_cache
        assert options.emit == ()
        assert options.deadline_s is None and options.cost_cache_size is None

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            CompileOptions().solver = "topdown"

    def test_replace_returns_new_validated_value(self):
        options = CompileOptions()
        derived = options.replace(solver="topdown", prune=False)
        assert derived.solver == "topdown" and not derived.prune
        assert options.solver == "gmc"  # original untouched
        with pytest.raises(ValueError):
            options.replace(solver="nonsense")

    @pytest.mark.parametrize(
        "bad",
        [
            {"solver": "nonsense"},
            {"metric": "nonsense"},
            {"emit": ("fortran",)},
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"cost_cache_size": 0},
            {"cost_cache_size": "big"},
            {"cost_cache_size": 10**9},  # above MAX_COST_CACHE_SIZE
        ],
    )
    def test_validation_rejects_bad_fields(self, bad):
        with pytest.raises((ValueError, TypeError)):
            CompileOptions(**bad)

    def test_catalog_must_quack_like_a_catalog(self):
        with pytest.raises(TypeError):
            CompileOptions(catalog="not a catalog")

    def test_metric_accepts_live_instances(self):
        metric = FlopCount()
        options = CompileOptions(metric=metric)
        assert options.resolve_metric() is metric
        assert options.metric_name == "flops"

    def test_wire_roundtrip(self):
        options = CompileOptions(
            solver="topdown",
            metric="time",
            emit=("julia", "numpy"),
            prune=False,
            match_cache=False,
            deadline_s=2.5,
            cost_cache_size=1234,
        )
        clone = CompileOptions.from_wire(options.to_wire())
        assert clone == options

    def test_wire_defaults_roundtrip(self):
        assert CompileOptions.from_wire(CompileOptions().to_wire()) == CompileOptions()

    def test_wire_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            CompileOptions.from_wire({"solvr": "gmc"})

    @pytest.mark.parametrize("key", ["prune", "match_cache"])
    @pytest.mark.parametrize("value", ["false", "true", 0, 1, None])
    def test_wire_rejects_non_boolean_toggles(self, key, value):
        """bool("false") is True -- a client's stringly-typed JSON must be
        rejected, not silently inverted."""
        with pytest.raises(ValueError, match="must be a boolean"):
            CompileOptions.from_wire({key: value})

    def test_wire_never_carries_the_catalog(self):
        catalog = KernelCatalog(build_default_kernels(), name="private")
        wire = CompileOptions(catalog=catalog).to_wire()
        assert "catalog" not in wire
        assert CompileOptions.from_wire(wire).catalog is None

    def test_cost_cache_size_is_applied_to_the_metric(self):
        options = CompileOptions(metric="flops", cost_cache_size=7)
        assert options.resolve_metric().cost_cache_size == 7

    def test_cost_cache_size_never_mutates_a_live_metric_instance(self):
        metric = FlopCount()
        original = metric.cost_cache_size
        resolved = CompileOptions(metric=metric, cost_cache_size=7).resolve_metric()
        assert resolved is metric and metric.cost_cache_size == original


# ---------------------------------------------------------------------------
# Emitter registry
# ---------------------------------------------------------------------------

class TestEmitterRegistry:
    def test_builtins_are_registered(self):
        assert {"julia", "numpy"} <= set(available_emitters())

    def test_unknown_emitter_names_the_available_ones(self):
        with pytest.raises(KeyError, match="julia"):
            get_emitter("fortran")

    def test_third_party_emitter_is_usable_everywhere(self):
        def generate_sexpr(program, function_name="compute"):
            calls = " ".join(call.kernel.display_name for call in program.calls)
            return f"({function_name} {calls})"

        register_emitter("sexpr", generate_sexpr)
        try:
            assert "sexpr" in available_emitters()
            # options validation accepts the new target ...
            options = CompileOptions(emit=("sexpr",))
            # ... the result API emits through it ...
            result = Compiler().compile(SOURCE, options=options)
            assert result.assignment("X").emit("sexpr") == "(compute_X TRMM POSV)"
            # ... and so does the service execution path.
            response = execute_request(CompileRequest(source=SOURCE, options=options))
            assert response.ok, response.error
            assert response.assignment("X").code["sexpr"] == "(compute_X TRMM POSV)"
        finally:
            _EMITTERS.pop("sexpr", None)

    def test_emit_shorthands_match_registry(self):
        result = compile_source(SOURCE)
        assert result.julia() == result.emit("julia")
        assert result.numpy() == result.emit("numpy")


# ---------------------------------------------------------------------------
# Compiler session
# ---------------------------------------------------------------------------

class TestCompilerSession:
    def test_compiles_source_text(self):
        result = Compiler().compile(SOURCE)
        assert result.assignment("X").kernel_sequence == ["TRMM", "POSV"]
        assert result.options is not None and result.options.solver == "gmc"

    def test_compiles_parsed_programs_and_expressions(self):
        compiler = Compiler()
        parsed = compiler.compile(parse_program(SOURCE))
        assert parsed.assignment("X").kernel_sequence == ["TRMM", "POSV"]

        a = Matrix("A", 100, 100, {Property.SPD})
        b = Matrix("B", 100, 40)
        result = compiler.compile(a.I * b)
        assert result.assignment("X").kernel_sequence == ["POSV"]
        assert set(result.operands) == {"A", "B"}

    def test_rejects_unknown_inputs(self):
        with pytest.raises(TypeError):
            Compiler().compile(42)

    def test_session_reuses_one_metric_instance(self):
        compiler = Compiler()
        first = compiler.metric_for()
        second = compiler.metric_for()
        assert first is second  # the warm kernel-cost LRU lives here

    def test_per_call_cost_cache_size_does_not_resize_the_shared_metric(self):
        """A request with custom cache sizing warms its own metric instance
        instead of permanently shrinking the session's shared LRU."""
        compiler = Compiler()
        shared = compiler.metric_for()
        sized = compiler.metric_for(CompileOptions(cost_cache_size=2))
        assert sized is not shared
        assert sized.cost_cache_size == 2
        assert shared.cost_cache_size == type(shared).cost_cache_size
        # ... and the default path still gets the same warm instance.
        assert compiler.metric_for() is shared

    def test_per_call_overrides_do_not_mutate_the_session(self):
        compiler = Compiler()
        timed = compiler.solve(
            Matrix("A", 50, 60) * Matrix("B", 60, 70) * Matrix("C", 70, 10),
            metric="time",
        )
        assert timed.metric.name == "time"
        assert compiler.options.metric == "flops"

    def test_solver_honours_options(self):
        compiler = Compiler()
        assert isinstance(compiler.solver(), GMCAlgorithm)
        assert isinstance(compiler.solver(solver="topdown"), TopDownGMC)
        assert compiler.solver(prune=False).prune is False
        # Session catalog always wins: per-call options share the warm caches.
        assert compiler.solver(solver="topdown").catalog is compiler.catalog

    def test_per_call_catalog_override_is_rejected(self):
        """A session is bound to one catalog (one warm cache domain); asking
        for a different one per call must fail loudly, never silently
        compile against the wrong catalog."""
        from repro.kernels import default_catalog

        compiler = Compiler()
        generic = default_catalog(include_specialized=False)
        with pytest.raises(ValueError, match="bound to catalog"):
            compiler.compile(SOURCE, catalog=generic)
        with pytest.raises(ValueError, match="bound to catalog"):
            compiler.compile(SOURCE, options=CompileOptions(catalog=generic))
        # The session's own catalog (or none at all) is always fine.
        assert compiler.compile(SOURCE, catalog=compiler.catalog).assignment(
            "X"
        ).kernel_sequence == ["TRMM", "POSV"]

    def test_legacy_name_keyed_metrics_dict_is_honoured(self):
        """execute_request(metrics={'flops': m}) must actually reuse m."""
        import warnings

        metric = FlopCount()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            response = execute_request(
                CompileRequest(source=SOURCE), metrics={"flops": metric}
            )
        assert response.ok
        assert metric._cost_misses > 0 or metric._cost_hits > 0

    def test_legacy_positional_catalog_still_compiles(self):
        """The pre-session signature was execute_request(request, catalog);
        a catalog in positional second place must not be mistaken for a
        Compiler and fold into an ok=False response."""
        import warnings

        from repro.kernels import default_catalog

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            response = execute_request(
                CompileRequest(source=SOURCE),
                default_catalog(include_specialized=False),
            )
        assert response.ok, response.error
        assert "POSV" not in response.assignment("X").kernels

    def test_metric_instance_cache_is_bounded(self):
        """A client cycling cost_cache_size values must not grow a worker's
        metric cache forever; plain-name defaults survive the eviction."""
        from repro.frontend.compiler import _MAX_METRIC_INSTANCES

        compiler = Compiler()
        default = compiler.metric_for()
        for size in range(2, 2 + 3 * _MAX_METRIC_INSTANCES):
            compiler.metric_for(CompileOptions(cost_cache_size=size))
        assert len(compiler._metrics) <= _MAX_METRIC_INSTANCES
        assert compiler.metric_for() is default

    def test_per_metric_breakdown_keeps_differently_sized_instances_apart(self):
        """Two live instances of one metric name (different cost_cache_size)
        must not overwrite each other in the kernel_cost per-metric view."""
        compiler = Compiler()
        compiler.compile(SOURCE)  # warm the default 'flops' instance
        compiler.compile(SOURCE, options=CompileOptions(cost_cache_size=64))
        per_metric = compiler.cache_stats()["kernel_cost"]["per_metric"]
        assert "flops" in per_metric
        assert "('flops', 64)" in per_metric

    def test_match_cache_off_bypasses_the_cache(self):
        catalog = KernelCatalog(build_default_kernels(), name="bypass-test")
        compiler = Compiler(CompileOptions(catalog=catalog, match_cache=False))
        compiler.compile(SOURCE)
        stats = catalog.match_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_cache_stats_reports_all_layers(self):
        compiler = Compiler()
        compiler.compile(SOURCE)
        stats = compiler.cache_stats()
        for layer in ("match_cache", "interner", "inference", "kernel_cost"):
            assert layer in stats
        compiler.reset_cache_stats()
        assert compiler.cache_stats()["kernel_cost"]["hits"] == 0


# ---------------------------------------------------------------------------
# CompilationResult target index
# ---------------------------------------------------------------------------

class TestCompilationResultIndex:
    def test_lookup_is_dict_backed(self):
        result = compile_source(SOURCE)
        assert result._index["X"] is result.assignment("X")

    def test_keyerror_lists_available_targets(self):
        result = compile_source(SOURCE)
        with pytest.raises(KeyError, match="available targets.*'X'.*'z'"):
            result.assignment("Q")

    def test_external_append_is_picked_up(self):
        result = compile_source(SOURCE)
        clone = result.assignment("X")
        renamed = CompiledAssignment(
            target="copy",
            expression=clone.expression,
            solution=clone.solution,
            program=clone.program,
        )
        result.assignments.append(renamed)  # legacy construction pattern
        assert result.assignment("copy") is renamed

    def test_empty_result_keyerror(self):
        result = CompilationResult(operands={})
        with pytest.raises(KeyError, match="<none>"):
            result.assignment("X")

    def test_pop_then_append_cannot_hide_a_target(self):
        """Same-length list mutation: a lookup miss forces one full
        re-index, so the new target resolves instead of raising."""
        result = compile_source(SOURCE)
        result.assignment("X")  # prime the index
        replaced = result.assignments.pop()
        renamed = CompiledAssignment(
            target="Y",
            expression=replaced.expression,
            solution=replaced.solution,
            program=replaced.program,
        )
        result.assignments.append(renamed)
        assert result.assignment("Y") is renamed

    def test_duplicate_targets_keep_first_match_semantics(self):
        """Reassigned targets resolve to the FIRST assignment, exactly like
        the pre-index linear scan did, without degrading to rebuilds."""
        source = """
        Matrix A (60, 60) <SPD>
        Matrix B (60, 20) <>
        X := A^-1 * B
        X := A * B
        """
        result = compile_source("\n".join(line.strip() for line in source.splitlines()))
        assert len(result) == 2
        first = result.assignments[0]
        assert result.assignment("X") is first
        assert result.assignment("X") is first  # stable across repeated calls


# ---------------------------------------------------------------------------
# Cross-entry-point identity (acceptance criterion)
# ---------------------------------------------------------------------------

OPTION_MATRIX = [
    CompileOptions(),
    CompileOptions(solver="topdown"),
    CompileOptions(prune=False, match_cache=False),
    CompileOptions(solver="topdown", prune=False, match_cache=False),
]


def _cli_kernel_sequences(options: CompileOptions, path, capsys):
    """Kernel sequences as reported by the real CLI with equivalent flags."""
    argv = [str(path), "--metric", options.metric_name, "--solver", options.solver]
    if not options.prune:
        argv.append("--no-prune")
    if not options.match_cache:
        argv.append("--no-match-cache")
    assert main(argv) == 0
    report = capsys.readouterr().out
    sequences = []
    for line in report.splitlines():
        if line.strip().startswith("kernels:"):
            sequences.append(line.split(":", 1)[1].strip().split(" -> "))
    return sequences


@pytest.mark.parametrize("options", OPTION_MATRIX, ids=lambda o: f"{o.solver}-p{int(o.prune)}-mc{int(o.match_cache)}")
def test_all_entry_points_agree(options, tmp_path, capsys):
    """Python API, CLI, service execution path and raw solver sessions build
    the same CompileOptions and produce identical kernel sequences."""
    # 1. Python API (Compiler session).
    api_result = Compiler(options).compile(SOURCE)
    api_sequences = [c.kernel_sequence for c in api_result]

    # 2. Command line (the real argparse path).
    path = tmp_path / "problem.chain"
    path.write_text(SOURCE, encoding="utf-8")
    cli_sequences = _cli_kernel_sequences(options, path, capsys)

    # 3. HTTP-service execution path (what every executor runs).
    response = execute_request(CompileRequest(source=SOURCE, options=options))
    assert response.ok, response.error
    service_sequences = [list(r.kernels) for r in response.assignments]

    # 4. Raw solver session on the parsed program (the benchmark-script path).
    solver = make_solver(options)
    bench_sequences = [
        list(solver.solve(expression).program(f"GMC[{t}]").kernel_names)
        for t, expression in parse_program(SOURCE).assignments
    ]

    assert api_sequences == cli_sequences == service_sequences == bench_sequences
    # The options value survives into the result for introspection.
    assert api_result.options.solver == options.solver


def test_entry_points_agree_on_alternative_metric(tmp_path, capsys):
    options = CompileOptions(metric="time")
    api = [c.kernel_sequence for c in Compiler(options).compile(SOURCE)]
    path = tmp_path / "problem.chain"
    path.write_text(SOURCE, encoding="utf-8")
    cli = _cli_kernel_sequences(options, path, capsys)
    response = execute_request(CompileRequest(source=SOURCE, options=options))
    assert response.ok
    service = [list(r.kernels) for r in response.assignments]
    assert api == cli == service


def test_wire_roundtripped_options_produce_identical_results():
    """Options surviving a JSON wire roundtrip compile identically."""
    import json

    options = CompileOptions(solver="topdown", prune=False)
    request = CompileRequest(source=SOURCE, options=options)
    clone = CompileRequest.from_dict(json.loads(json.dumps(request.to_dict())))
    assert clone.options == options
    direct = execute_request(request)
    roundtripped = execute_request(clone)
    assert direct.kernel_sequences == roundtripped.kernel_sequences


def test_deadline_placeholder_is_threaded_to_solvers():
    options = CompileOptions(deadline_s=1.5)
    assert Compiler(options).solver().deadline_s == 1.5
    assert GMCAlgorithm(options).deadline_s == 1.5
    assert TopDownGMC(options.replace(solver="topdown")).deadline_s == 1.5

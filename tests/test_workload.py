"""Tests for the random workload generator (the Section 4 problem distribution)."""

import pytest

from repro.algebra import Matrix, Property, Times
from repro.algebra.simplify import unary_decomposition
from repro.core import GMCAlgorithm
from repro.experiments.workload import (
    ChainGenerator,
    named_examples,
    paper_generator,
    paper_sizes,
)


class TestChainGenerator:
    def test_lengths_within_bounds(self):
        generator = ChainGenerator(min_length=3, max_length=10, seed=1)
        for problem in generator.generate_many(50):
            assert 3 <= problem.length <= 10

    def test_chains_are_well_formed(self):
        generator = ChainGenerator(seed=2)
        for problem in generator.generate_many(50):
            # Construction already checks conformability; re-assert explicitly.
            previous = None
            for factor in problem.factors:
                if previous is not None:
                    assert previous.columns == factor.rows
                previous = factor

    def test_inverted_factors_are_square(self):
        generator = ChainGenerator(seed=3, inverse_probability=0.9)
        for problem in generator.generate_many(50):
            for factor in problem.factors:
                leaf, _, inverted = unary_decomposition(factor)
                if inverted:
                    assert leaf.rows == leaf.columns

    def test_properties_only_on_square_operands(self):
        generator = ChainGenerator(seed=4, property_probability=1.0)
        square_only = {
            Property.SPD,
            Property.SYMMETRIC,
            Property.DIAGONAL,
            Property.LOWER_TRIANGULAR,
            Property.UPPER_TRIANGULAR,
        }
        for problem in generator.generate_many(40):
            for operand in problem.operands:
                if operand.rows != operand.columns:
                    assert not (operand.properties & square_only)

    def test_sizes_come_from_the_grid(self):
        grid = (10, 20, 30)
        generator = ChainGenerator(size_choices=grid, vector_probability=0.0, seed=5)
        for problem in generator.generate_many(20):
            for operand in problem.operands:
                assert operand.rows in grid
                assert operand.columns in grid

    def test_vectors_appear_when_requested(self):
        generator = ChainGenerator(seed=6, vector_probability=0.5)
        problems = generator.generate_many(30)
        assert any(
            operand.is_vector for problem in problems for operand in problem.operands
        )

    def test_square_probability_controls_square_fraction(self):
        always = ChainGenerator(seed=7, square_probability=1.0, vector_probability=0.0)
        never = ChainGenerator(seed=7, square_probability=0.0, vector_probability=0.0, size_choices=tuple(range(50, 2001, 50)))
        square_always = sum(
            operand.is_square for p in always.generate_many(20) for operand in p.operands
        )
        square_never = sum(
            operand.is_square for p in never.generate_many(20) for operand in p.operands
        )
        assert square_always > square_never

    def test_reproducibility(self):
        first = ChainGenerator(seed=8).generate_many(10)
        second = ChainGenerator(seed=8).generate_many(10)
        assert [str(p.expression) for p in first] == [str(p.expression) for p in second]

    def test_identifiers_are_unique(self):
        generator = ChainGenerator(seed=9)
        identifiers = [problem.identifier for problem in generator.generate_many(25)]
        assert len(set(identifiers)) == 25

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ChainGenerator(min_length=1)
        with pytest.raises(ValueError):
            ChainGenerator(min_length=5, max_length=3)
        with pytest.raises(ValueError):
            ChainGenerator(size_choices=())

    def test_every_generated_chain_is_solvable(self):
        generator = paper_generator(seed=10)
        gmc = GMCAlgorithm()
        for problem in generator.generate_many(25):
            solution = gmc.solve(problem.expression)
            assert solution.computable, str(problem)


class TestPaperConfiguration:
    def test_paper_sizes_grid(self):
        sizes = paper_sizes()
        assert sizes[0] == 50
        assert sizes[-1] == 2000
        assert len(sizes) == 40

    def test_paper_generator_scaled_down_by_default(self):
        assert max(paper_generator().size_choices) <= 300

    def test_paper_generator_full_scale(self):
        assert max(paper_generator(full_scale=True).size_choices) == 2000

    def test_paper_generator_length_range(self):
        generator = paper_generator(seed=11)
        lengths = {problem.length for problem in generator.generate_many(60)}
        assert min(lengths) >= 3
        assert max(lengths) <= 10


class TestNamedExamples:
    def test_all_examples_present(self):
        examples = named_examples()
        assert {
            "triangular_inversion",
            "kalman_filter",
            "generalized_eigenproblem",
            "vector_tail",
            "tridiagonal_reduction",
        } <= set(examples)

    def test_examples_are_well_formed_and_solvable(self):
        gmc = GMCAlgorithm()
        for name, problem in named_examples().items():
            solution = gmc.solve(problem.expression)
            assert solution.computable, name

    def test_kalman_filter_exploits_spd(self):
        problem = named_examples()["kalman_filter"]
        solution = GMCAlgorithm().solve(problem.expression)
        assert "POSV" in solution.kernel_sequence()

    def test_triangular_inversion_uses_triangular_solves(self):
        problem = named_examples()["triangular_inversion"]
        solution = GMCAlgorithm().solve(problem.expression)
        assert "TRSM" in solution.kernel_sequence()

    def test_vector_tail_is_all_matrix_vector_work(self):
        problem = named_examples()["vector_tail"]
        solution = GMCAlgorithm().solve(problem.expression)
        assert set(solution.kernel_sequence()) <= {"GEMV", "GER", "DOT"}

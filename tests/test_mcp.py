"""Tests for the classic matrix chain algorithms (paper Section 2)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mcp import (
    MatrixChainDP,
    brute_force_optimal_cost,
    catalan_number,
    chin_heuristic,
    enumerate_parenthesizations,
    left_to_right_cost,
    left_to_right_tree,
    matrix_chain_order,
    memoized_matrix_chain,
    parenthesization_cost,
    product_flops,
    right_to_left_cost,
    right_to_left_tree,
)

#: The classic CLRS teaching instance.
CLRS_SIZES = [30, 35, 15, 5, 10, 20, 25]
#: Its optimal cost in multiply-add pairs is 15125; the paper counts 2 FLOPs each.
CLRS_OPTIMAL_FLOPS = 2 * 15125


class TestMatrixChainOrder:
    def test_clrs_instance(self):
        costs, _ = matrix_chain_order(CLRS_SIZES)
        assert costs[0][5] == CLRS_OPTIMAL_FLOPS

    def test_single_matrix_costs_nothing(self):
        dp = MatrixChainDP([10, 20])
        assert dp.optimal_cost == 0.0

    def test_two_matrices(self):
        dp = MatrixChainDP([10, 20, 30])
        assert dp.optimal_cost == product_flops(10, 20, 30)

    def test_three_matrices_textbook_example(self):
        dp = MatrixChainDP([10, 100, 5, 50])
        assert dp.optimal_cost == 2 * (10 * 100 * 5 + 10 * 5 * 50)
        assert dp.parenthesization() == "((M0 * M1) * M2)"

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            matrix_chain_order([10])
        with pytest.raises(ValueError):
            matrix_chain_order([10, 0, 5])

    def test_agreement_with_memoized_variant(self):
        rng = random.Random(7)
        for _ in range(20):
            sizes = [rng.randint(1, 60) for _ in range(rng.randint(2, 9))]
            costs, _ = matrix_chain_order(sizes)
            assert costs[0][len(sizes) - 2] == memoized_matrix_chain(sizes)

    def test_agreement_with_brute_force(self):
        rng = random.Random(11)
        for _ in range(15):
            sizes = [rng.randint(1, 40) for _ in range(rng.randint(3, 8))]
            costs, _ = matrix_chain_order(sizes)
            assert costs[0][len(sizes) - 2] == pytest.approx(brute_force_optimal_cost(sizes))

    def test_paper_section33_sizes(self):
        """The ABCDE example of Section 3.3: optimal is 3.16e8 FLOPs."""
        sizes = [130, 700, 383, 1340, 193, 900]
        dp = MatrixChainDP(sizes)
        assert dp.optimal_cost == pytest.approx(3.16e8, rel=0.01)
        assert dp.parenthesization(["A", "B", "C", "D", "E"]) == "((((A * B) * C) * D) * E)"

    def test_section33_time_optimal_tree_costs_332e8(self):
        sizes = [130, 700, 383, 1340, 193, 900]
        tree = (((0, 1), (2, 3)), 4)
        assert parenthesization_cost(tree, sizes) == pytest.approx(3.32e8, rel=0.01)


class TestTreesAndEnumeration:
    def test_catalan_numbers(self):
        assert [catalan_number(i) for i in range(6)] == [1, 1, 2, 5, 14, 42]

    def test_enumeration_count_matches_catalan(self):
        for n in range(1, 6):
            trees = list(enumerate_parenthesizations(0, n - 1))
            assert len(trees) == catalan_number(n - 1)

    def test_left_to_right_tree_cost(self):
        sizes = [5, 6, 7, 8]
        assert parenthesization_cost(left_to_right_tree(3), sizes) == left_to_right_cost(sizes)

    def test_right_to_left_tree_cost(self):
        sizes = [5, 6, 7, 8]
        assert parenthesization_cost(right_to_left_tree(3), sizes) == right_to_left_cost(sizes)

    def test_nonconforming_tree_raises(self):
        with pytest.raises(ValueError):
            parenthesization_cost((1, 0), [5, 6, 7])

    def test_multiplication_order_respects_dependencies(self):
        dp = MatrixChainDP(CLRS_SIZES)
        seen = set()
        for i, k, j in dp.multiplication_order():
            if i != k:
                assert (i, dp.split(i, k), k) in seen or (i, k) == (i, i)
            seen.add((i, k, j))
        assert dp.multiplication_order()[-1][0] == 0
        assert dp.multiplication_order()[-1][2] == len(CLRS_SIZES) - 2


class TestHeuristicsAndOrders:
    def test_left_to_right_is_never_better_than_optimal(self):
        rng = random.Random(3)
        for _ in range(25):
            sizes = [rng.randint(1, 80) for _ in range(rng.randint(2, 9))]
            dp = MatrixChainDP(sizes)
            assert left_to_right_cost(sizes) >= dp.optimal_cost - 1e-9

    def test_right_to_left_is_never_better_than_optimal(self):
        rng = random.Random(4)
        for _ in range(25):
            sizes = [rng.randint(1, 80) for _ in range(rng.randint(2, 9))]
            dp = MatrixChainDP(sizes)
            assert right_to_left_cost(sizes) >= dp.optimal_cost - 1e-9

    def test_chin_heuristic_is_valid_and_reasonable(self):
        rng = random.Random(5)
        for _ in range(25):
            sizes = [rng.randint(1, 80) for _ in range(rng.randint(2, 8))]
            cost, tree = chin_heuristic(sizes)
            dp = MatrixChainDP(sizes)
            assert cost == pytest.approx(parenthesization_cost(tree, sizes))
            assert cost >= dp.optimal_cost - 1e-9
            assert cost <= 2.0 * max(dp.optimal_cost, 1.0)

    def test_chin_single_matrix(self):
        cost, tree = chin_heuristic([10, 20])
        assert cost == 0.0
        assert tree == 0


class TestPropertyBased:
    @given(
        st.lists(st.integers(min_value=1, max_value=60), min_size=3, max_size=8)
    )
    @settings(max_examples=60, deadline=None)
    def test_dp_is_lower_bound_of_every_parenthesization(self, sizes):
        dp = MatrixChainDP(sizes)
        n = len(sizes) - 1
        for tree in enumerate_parenthesizations(0, n - 1):
            assert parenthesization_cost(tree, sizes) >= dp.optimal_cost - 1e-6

    @given(
        st.lists(st.integers(min_value=1, max_value=200), min_size=2, max_size=11)
    )
    @settings(max_examples=80, deadline=None)
    def test_dp_cost_is_achieved_by_its_own_tree(self, sizes):
        dp = MatrixChainDP(sizes)
        assert parenthesization_cost(dp.tree(), sizes) == pytest.approx(dp.optimal_cost)

    @given(
        st.lists(st.integers(min_value=1, max_value=200), min_size=2, max_size=10)
    )
    @settings(max_examples=60, deadline=None)
    def test_memoized_equals_bottom_up(self, sizes):
        costs, _ = matrix_chain_order(sizes)
        assert memoized_matrix_chain(sizes) == pytest.approx(costs[0][len(sizes) - 2])

    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=2, max_size=9))
    @settings(max_examples=50, deadline=None)
    def test_optimal_cost_is_finite_and_nonnegative(self, sizes):
        dp = MatrixChainDP(sizes)
        assert dp.optimal_cost >= 0.0
        assert math.isfinite(dp.optimal_cost)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench bench-smoke paper-benchmarks

## Tier-1 verification: the full test suite.
test:
	$(PYTHON) -m pytest -x -q tests/

## Quick subset (no hypothesis-heavy modules) for tight edit loops.
test-fast:
	$(PYTHON) -m pytest -x -q tests/ -k "not property_based and not equivalence"

## Full generation-time benchmark (writes BENCH_generation.json).
bench:
	$(PYTHON) scripts/bench_generation.py

## CI-sized benchmark (fails on legacy/memoized solution divergence).
bench-smoke:
	$(PYTHON) scripts/bench_generation.py --smoke --output bench_smoke.json

## Paper-reproduction benchmark suite (pytest-benchmark).
paper-benchmarks:
	$(PYTHON) -m pytest -x -q benchmarks/

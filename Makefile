PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench bench-smoke paper-benchmarks serve service-check snapshot-check api-check

## Tier-1 verification: the full test suite.
test:
	$(PYTHON) -m pytest -x -q tests/

## Quick subset (no hypothesis-heavy modules) for tight edit loops.
test-fast:
	$(PYTHON) -m pytest -x -q tests/ -k "not property_based and not equivalence"

## Full generation-time benchmark (writes BENCH_generation.json),
## including the warm-pool service throughput section.
bench:
	$(PYTHON) scripts/bench_generation.py --serve

## Start the HTTP compilation service (warm-cache worker pool).
serve:
	$(PYTHON) -m repro.frontend --serve

## End-to-end check against a freshly booted HTTP server (what CI runs).
service-check:
	$(PYTHON) scripts/ci_service_check.py --workers 2 --batch 24

## Snapshot warm-boot check: boot, snapshot, restart against the same
## --snapshot-dir, and gate on the restarted pool's plan-cache hit rate.
snapshot-check:
	$(PYTHON) scripts/ci_service_check.py --workers 2 --batch 8 --snapshot

## Public-API surface manifest + internal deprecation hygiene (what CI runs).
api-check:
	$(PYTHON) scripts/ci_api_check.py

## CI-sized benchmark (fails on legacy/memoized solution divergence, a
## measurable untraced-hot-path overhead from the observability layer, or
## a warm-serve analytics overhead at/above 3%).
bench-smoke:
	$(PYTHON) scripts/bench_generation.py --smoke --check-trace-overhead 0.03 --check-analytics-overhead 0.03 --check-execute-identity --output bench_smoke.json

## Paper-reproduction benchmark suite (pytest-benchmark).
paper-benchmarks:
	$(PYTHON) -m pytest -x -q benchmarks/
